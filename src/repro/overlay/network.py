"""The overlay container: membership, multi-hop routing, churn.

:class:`OverlayNetwork` holds the full node population and plays the
wire between them: it executes multi-hop routes, implements the join
protocol (state transfer from the nodes on the join route), and the
self-healing repair that replaces failed routing-table entries (paper
§3.3, "Corona inherits its robustness ... from the underlying
structured overlay").

The container is deliberately synchronous — the discrete-event
simulators layer timing on top; this class answers only *structural*
questions (who owns key k, who is in this wedge, what route does a
message take).

Churn is **incremental** (default): the container maintains a sorted
identifier index, so a join touches only the newcomer's exact ring
neighbours plus one empty-slot check per survivor, and a failure wave
repairs only the survivors that actually referenced a dead node —
refilling each lost routing slot and leaf from the index instead of
re-sampling the whole population.  The end state is at least as
complete as the announcement-based protocol it replaces: a routing
slot is empty only when no live node with the required prefix exists,
and every leaf set is the exact ring slice around its owner.  The
pre-incremental paths (``incremental=False``) are retained as the
rebuild reference the churn benchmarks compare against.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from collections import Counter
from collections.abc import Iterable, Iterator, Mapping

from repro.overlay.hashing import node_id_for_address
from repro.overlay.leafset import LeafSet
from repro.overlay.node import PastryNode
from repro.overlay.nodeid import ID_BITS, NodeId, bits_per_digit, digits_per_id
from repro.overlay.routing import RoutingTable
from repro.overlay.wedge import base_level, wedge_members


class RouteError(RuntimeError):
    """Raised when routing cannot make progress (partitioned state)."""


def _slot_for_values(
    owner_value: int, other_value: int, bpd: int, mask: int
) -> tuple[int, int]:
    """(row, col) of ``other`` in ``owner``'s table, on raw id values.

    The integer-arithmetic twin of :meth:`RoutingTable.slot_for`, used
    on the churn hot paths where per-pair method/object overhead
    dominates: row is the shared-prefix digit count, col the other
    node's next digit.  ``bpd``/``mask`` are ``bits_per_digit(base)``
    and ``base - 1``, hoisted by the caller.
    """
    xor = owner_value ^ other_value
    row = (ID_BITS - xor.bit_length()) // bpd
    col = (other_value >> (ID_BITS - (row + 1) * bpd)) & mask
    return row, col


class RoutingTablesView(Mapping):
    """Live read-only mapping node-id → routing table.

    Backed directly by the overlay's membership, so consumers holding
    it (the decentralized aggregator, wedge floods) always see current
    tables without re-materializing a dict per membership event — the
    "incremental routing-table view" half of incremental churn.
    """

    __slots__ = ("_network",)

    def __init__(self, network: "OverlayNetwork") -> None:
        self._network = network

    def __getitem__(self, node_id: NodeId) -> RoutingTable:
        return self._network.nodes[node_id].table

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._network.nodes)

    def __len__(self) -> int:
        return len(self._network.nodes)


class OverlayNetwork:
    """A population of :class:`PastryNode` with routing and churn.

    Parameters
    ----------
    base:
        Digit base ``b`` of the identifier space (16 in the paper).
    leaf_size:
        Leaf-set half-width ``f``; also the owner-replication factor.
    rng:
        Source of randomness for the legacy join/repair paths, so
        simulations are reproducible.  The incremental paths are
        deterministic and draw nothing.
    incremental:
        When True (default) joins and failures use the index-based
        incremental paths; False restores the announcement/sampled
        repair behaviour (the churn benchmarks' rebuild reference).
    """

    def __init__(
        self,
        base: int = 16,
        leaf_size: int = 8,
        rng: random.Random | None = None,
        incremental: bool = True,
    ) -> None:
        self.base = base
        self.leaf_size = leaf_size
        self.rng = rng or random.Random(0)
        self.incremental = incremental
        self.nodes: dict[NodeId, PastryNode] = {}
        #: Sorted live identifier values — the membership index the
        #: incremental join/repair/ownership paths bisect into.
        self._ids: list[int] = []
        self._by_value: dict[int, NodeId] = {}
        self._tables_view = RoutingTablesView(self)
        #: Histogram of shared-prefix depths between value-adjacent
        #: node pairs.  The deepest prefix collision in the population
        #: is always between sorted neighbours, so this keeps
        #: :meth:`aggregation_rows` O(1) under churn instead of
        #: rescanning every routing table per membership event.
        self._pair_depths: Counter[int] = Counter()
        #: Cumulative incremental-join work: ``joins`` completed,
        #: ``survivor_updates`` slot candidates examined at existing
        #: nodes (members of the newcomer's deepest enclosing region;
        #: already-filled slots are examined but not written),
        #: ``leaf_updates`` ring-neighbour handshakes, ``fill_probes``
        #: index bisections while filling the newcomer's table.  The
        #: churn scale tests assert these stay O(log N)-ish per join.
        self.join_stats: dict[str, int] = {
            "joins": 0,
            "survivor_updates": 0,
            "leaf_updates": 0,
            "fill_probes": 0,
        }

    def _spl_values(self, a: int, b: int) -> int:
        """Shared-prefix digits between two identifier values."""
        if a == b:
            return digits_per_id(self.base)
        xor = a ^ b
        return (ID_BITS - xor.bit_length()) // bits_per_digit(self.base)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_node(self, address: str) -> PastryNode:
        """Create a node from ``address`` and run the join protocol."""
        node_id = node_id_for_address(address)
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id for address {address!r}")
        node = PastryNode(
            node_id=node_id,
            base=self.base,
            address=address,
            leaf_size=self.leaf_size,
        )
        if self.incremental:
            self._join_incremental(node)
        else:
            self._join(node)
        self.nodes[node_id] = node
        self._index_insert(node_id)
        return node

    def _index_insert(self, node_id: NodeId) -> None:
        value = node_id.value
        ids = self._ids
        position = bisect_left(ids, value)
        pred = ids[position - 1] if position > 0 else None
        succ = ids[position] if position < len(ids) else None
        if pred is not None and succ is not None:
            self._pair_depths[self._spl_values(pred, succ)] -= 1
        if pred is not None:
            self._pair_depths[self._spl_values(pred, value)] += 1
        if succ is not None:
            self._pair_depths[self._spl_values(value, succ)] += 1
        ids.insert(position, value)
        self._by_value[value] = node_id

    def _join_incremental(self, joining: PastryNode) -> None:
        """Index-based join: exact neighbour updates, bisected table fill.

        Reaches the same end state as the announcement-based join — the
        newcomer's table is as complete as the population allows and
        every affected peer learns of it — in O(log N)-ish work:

        * the newcomer's leaf set is the exact ring slice around its
          identifier, and those neighbours reciprocally admit it (no
          other node's leaf set can contain it);
        * the newcomer's routing slots are filled by prefix-range
          bisection into the sorted index;
        * survivors are updated through the per-region empty-slot
          argument: survivor S files the newcomer X into slot
          ``(spl(S, X), digit)`` whose identifier region is exactly
          ``prefix(X, spl(S, X) + 1)``.  The incremental invariant — a
          slot is empty only when its region holds no live node —
          means that slot can be empty only if that region was empty
          before the join, i.e. only for survivors in X's *deepest
          non-empty enclosing prefix region* (everyone deeper shares
          more digits, and that region is empty by maximality; for
          everyone shallower the region already held a node, so
          first-observed-wins keeps their existing entry).  The
          deepest enclosing region is found from X's sorted-index
          neighbours, so a join costs two bisects plus one slot write
          per region member instead of a population scan.
        """
        if not self.nodes:
            return
        ids = self._ids
        n = len(ids)
        stats = self.join_stats
        stats["joins"] += 1
        position = bisect_left(ids, joining.node_id.value)
        span = min(self.leaf_size, n)
        for offset in range(span):
            successor = self._by_value[ids[(position + offset) % n]]
            predecessor = self._by_value[ids[(position - 1 - offset) % n]]
            for neighbour_id in (successor, predecessor):
                joining.observe(neighbour_id)
                self.nodes[neighbour_id].observe(joining.node_id)
                stats["leaf_updates"] += 2
        self._fill_table_from_index(joining)
        new_id = joining.node_id
        value = new_id.value
        bpd = bits_per_digit(self.base)
        mask = self.base - 1
        # Deepest enclosing non-empty region: the maximal shared prefix
        # is always achieved at a sorted neighbour.
        pred = ids[(position - 1) % n]
        succ = ids[position % n]
        depth = max(self._spl_values(pred, value), self._spl_values(succ, value))
        shift = ID_BITS - depth * bpd
        region_lo = (value >> shift) << shift
        left = bisect_left(ids, region_lo)
        right = bisect_left(ids, region_lo + (1 << shift))
        col = (value >> (shift - bpd)) & mask
        stats["survivor_updates"] += right - left
        for index in range(left, right):
            survivor = self.nodes[self._by_value[ids[index]]]
            # The newcomer fits exactly slot (depth, col) of every
            # region member; fill only if empty (first-observed wins).
            bucket = survivor.table._rows.setdefault(depth, {})
            if col not in bucket:
                bucket[col] = new_id

    def _fill_table_from_index(self, node: PastryNode) -> None:
        """Populate every routing slot that has a live candidate.

        Row ``r`` column ``c`` wants a node matching ``node``'s first
        ``r`` digits with ``c`` as digit ``r`` — an aligned identifier
        range, resolved by bisection.  Slots already filled (by leaf
        neighbours) are kept; rows past the node's deepest non-empty
        prefix region are skipped entirely.
        """
        ids = self._ids
        value = node.node_id.value
        bpd = bits_per_digit(self.base)
        stats = self.join_stats
        for row in range(digits_per_id(self.base)):
            shift = ID_BITS - (row + 1) * bpd
            top = value >> (shift + bpd)
            own_digit = (value >> shift) & (self.base - 1)
            # Any candidate in rows >= row shares the first `row`
            # digits; if that region holds no other live node, deeper
            # rows are empty too.
            region_lo = top << (shift + bpd)
            region_hi = region_lo + (1 << (shift + bpd))
            left = bisect_left(ids, region_lo)
            right = bisect_left(ids, region_hi)
            stats["fill_probes"] += 2
            occupied = right - left
            if node.node_id.value in self._by_value:
                occupied -= 1  # the node itself, when already indexed
            if occupied <= 0:
                break
            for col in range(self.base):
                if col == own_digit:
                    continue
                lo = ((top << bpd) | col) << shift
                index = bisect_left(ids, lo, left, right)
                stats["fill_probes"] += 1
                if index < right and ids[index] < lo + (1 << shift):
                    node.table.observe(self._by_value[ids[index]])

    def _join(self, joining: PastryNode) -> None:
        """Pastry join: learn state from the route toward our own id.

        The joining node routes to its own identifier; every node on
        the route contributes its routing state.  With the synchronous
        container we additionally let the affected peers observe the
        newcomer, which stands in for Pastry's join announcements.
        (Legacy path, kept as the rebuild benchmarks' reference.)
        """
        if not self.nodes:
            return
        seed = self.rng.choice(list(self.nodes.values()))
        route = self._trace_route(seed, joining.node_id)
        teachers = set(route)
        # The numerically closest node shares its leaf set — the join
        # protocol's final step — which seeds the newcomer's leaves.
        closest = route[-1]
        teachers.update(self.nodes[closest].leaves.members())
        for teacher_id in teachers:
            teacher = self.nodes.get(teacher_id)
            if teacher is None:
                continue
            joining.observe(teacher.node_id)
            for contact in teacher.known_nodes():
                if contact in self.nodes:
                    joining.observe(contact)
            teacher.observe(joining.node_id)
        # Announce to everyone whose state the newcomer should appear
        # in, and vice versa.  A real deployment reaches the same state
        # through join announcements and background gossip; the
        # synchronous container short-circuits it so routing tables are
        # as complete as the population allows (a slot is empty only
        # when no node with the required prefix exists) — the property
        # both wedge floods and cluster aggregation rely on.
        for other in self.nodes.values():
            other.observe(joining.node_id)
            joining.observe(other.node_id)

    def remove_node(self, node_id: NodeId) -> None:
        """Fail a node and run self-healing repair at its peers."""
        self.remove_nodes([node_id])

    def remove_nodes(self, node_ids: Iterable[NodeId]) -> None:
        """Fail a whole wave of nodes with one repair pass.

        The incremental path deletes the wave from the index, then
        repairs only the survivors that actually referenced a dead
        node: each lost routing slot is refilled by prefix-range
        bisection and each thinned leaf set is rebuilt as the exact
        ring slice.  One wave ⇒ one repair, however many nodes fail.
        """
        victims = list(node_ids)
        for node_id in victims:
            if node_id not in self.nodes:
                raise KeyError(f"unknown node {node_id!r}")
        if len(set(victims)) != len(victims):
            raise ValueError("duplicate node in removal wave")
        if not self.incremental:
            for node_id in victims:
                self._drop_from_index(node_id)
                for survivor in self.nodes.values():
                    survivor.forget(node_id)
                self._repair()
            return
        # Leaf sets are exact ring slices (invariant of the incremental
        # paths), so only each victim's current ring neighbours can
        # hold it as a leaf — collect them before the index shrinks.
        leaf_holders: set[NodeId] = set()
        for node_id in victims:
            clockwise, counter_clockwise = self._ring_slices(node_id)
            leaf_holders.update(clockwise)
            leaf_holders.update(counter_clockwise)
        for node_id in victims:
            self._drop_from_index(node_id)
        if not self.nodes:
            return
        for holder_id in leaf_holders:
            holder = self.nodes.get(holder_id)
            if holder is None:
                continue  # the holder died in the same wave
            clockwise, counter_clockwise = self._ring_slices(holder_id)
            holder.leaves.reset(clockwise, counter_clockwise)
        self._repair_tables(victims)

    def _drop_from_index(self, node_id: NodeId) -> None:
        del self.nodes[node_id]
        value = node_id.value
        ids = self._ids
        position = bisect_left(ids, value)
        pred = ids[position - 1] if position > 0 else None
        succ = ids[position + 1] if position + 1 < len(ids) else None
        if pred is not None:
            self._pair_depths[self._spl_values(pred, value)] -= 1
        if succ is not None:
            self._pair_depths[self._spl_values(value, succ)] -= 1
        if pred is not None and succ is not None:
            self._pair_depths[self._spl_values(pred, succ)] += 1
        del ids[position]
        del self._by_value[value]

    def _repair_tables(self, victims: list[NodeId]) -> None:
        """Erase dead routing entries and refill each slot exactly.

        A victim can sit in exactly one slot of each survivor's table
        (row = shared prefix, column = the victim's next digit), so the
        scan is one integer-xor prefix computation per survivor/victim
        pair; only slots that actually pointed at a victim are
        repaired, by prefix-range bisection into the live index.
        """
        bpd = bits_per_digit(self.base)
        mask = self.base - 1
        victim_values = [(dead, dead.value) for dead in victims]
        for survivor in self.nodes.values():
            survivor_value = survivor.node_id.value
            rows = survivor.table._rows
            for dead, dead_value in victim_values:
                row, col = _slot_for_values(
                    survivor_value, dead_value, bpd, mask
                )
                bucket = rows.get(row)
                if not bucket or bucket.get(col) != dead:
                    continue
                del bucket[col]
                replacement = self._slot_candidate(survivor.node_id, row, col)
                if replacement is not None:
                    bucket[col] = replacement

    def _slot_candidate(
        self, owner: NodeId, row: int, col: int
    ) -> NodeId | None:
        """First live node fitting routing slot (row, col) of ``owner``."""
        bpd = bits_per_digit(self.base)
        shift = ID_BITS - (row + 1) * bpd
        top = owner.value >> (shift + bpd)
        lo = ((top << bpd) | col) << shift
        index = bisect_left(self._ids, lo)
        if index < len(self._ids) and self._ids[index] < lo + (1 << shift):
            return self._by_value[self._ids[index]]
        return None

    def _ring_slices(self, node_id: NodeId) -> tuple[list[NodeId], list[NodeId]]:
        """The exact ``leaf_size`` ring neighbours on each side."""
        ids = self._ids
        n = len(ids)
        position = bisect_left(ids, node_id.value)
        span = min(self.leaf_size, n - 1)
        clockwise = [
            self._by_value[ids[(position + 1 + k) % n]] for k in range(span)
        ]
        counter_clockwise = [
            self._by_value[ids[(position - 1 - k) % n]] for k in range(span)
        ]
        return clockwise, counter_clockwise

    def _repair(self) -> None:
        """Refill empty routing slots and thin leaf sets from live peers.

        Mirrors Pastry's property that *any* node with the right prefix
        can occupy a slot: each node re-observes a sample of the live
        population.  Sampling keeps repair O(N·sample) instead of O(N²).
        (Legacy path; the incremental repair refills slots exactly.)
        """
        population = list(self.nodes)
        if not population:
            return
        sample_size = min(len(population), max(16, 4 * self.base))
        for node in self.nodes.values():
            for candidate in self.rng.sample(population, sample_size):
                node.observe(candidate)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _trace_route(self, start: PastryNode, key: NodeId) -> list[NodeId]:
        """Hop-by-hop route from ``start`` to the owner of ``key``.

        Prefix routing with two safety nets: stale contacts are
        forgotten and the step retried, and a would-be loop (possible
        only with inconsistent mid-join state) degrades to greedy
        distance descent, which strictly shrinks ring distance per hop
        and therefore terminates.
        """
        route = [start.node_id]
        visited = {start.node_id}
        current = start
        for _ in range(2 * len(self.nodes) + 2):
            hop = current.route_step(key)
            if hop is not None and hop not in self.nodes:
                # Stale contact: repair locally and retry the step.
                current.forget(hop)
                continue
            if hop is None or hop in visited:
                hop = current.closest_known(key, exclude=visited)
                while hop is not None and hop not in self.nodes:
                    current.forget(hop)
                    hop = current.closest_known(key, exclude=visited)
                if hop is None:
                    return route
            route.append(hop)
            visited.add(hop)
            current = self.nodes[hop]
        raise RouteError(f"route for {key!r} did not converge")

    def route(self, start: NodeId, key: NodeId) -> list[NodeId]:
        """Public routing API: the node-id path from ``start`` to owner."""
        if start not in self.nodes:
            raise KeyError(f"unknown start node {start!r}")
        return self._trace_route(self.nodes[start], key)

    def _adjacent_ids(self, key: NodeId) -> list[NodeId]:
        """The live nodes adjacent to ``key`` in identifier order.

        Both the numerically closest node and the longest-prefix-match
        node are always among the sorted neighbours of the key (common
        prefixes are maximal between sorted neighbours), so ownership
        queries resolve with a bisect instead of a population scan.
        """
        ids = self._ids
        n = len(ids)
        position = bisect_left(ids, key.value)
        values = {
            ids[(position - 1) % n],
            ids[position % n],
            ids[(position + 1) % n],
        }
        return [self._by_value[value] for value in values]

    def owner_of(self, key: NodeId) -> NodeId:
        """The primary owner: numerically closest node to ``key``.

        Computed exactly over the live population; routing converges to
        the same node (tested as an invariant).
        """
        if not self.nodes:
            raise RouteError("empty overlay")
        return min(
            self._adjacent_ids(key),
            key=lambda node_id: LeafSet._ownership_distance(node_id, key),
        )

    def anchor_key(self, node_id: NodeId, key: NodeId) -> tuple[int, int]:
        """The ordering :meth:`anchor_of` maximizes, as a sortable key.

        Exposed so callers maintaining anchor caches (the system's
        anchor index) compare candidates with *exactly* the comparator
        anchor resolution uses — one source of truth for the tie-break.
        """
        return (
            node_id.shared_prefix_len(key, self.base),
            -LeafSet._ownership_distance(node_id, key),
        )

    def anchor_of(self, key: NodeId) -> NodeId:
        """The node sharing the longest identifier prefix with ``key``.

        Wedges are defined by prefix match with the channel identifier,
        so wedge floods must start from a node *inside* the wedge.  The
        ring-closest owner usually is that node, but near prefix
        boundaries it may not be; the anchor — found by prefix routing
        in a live system — is in every non-empty wedge by construction.
        Ties are broken by ring distance, so anchor == owner whenever
        the owner has a maximal prefix match.
        """
        if not self.nodes:
            raise RouteError("empty overlay")
        return max(
            self._adjacent_ids(key),
            key=lambda node_id: self.anchor_key(node_id, key),
        )

    def replica_owners(self, key: NodeId, replicas: int) -> list[NodeId]:
        """Primary owner plus its ``replicas - 1`` closest ring neighbours.

        These hold copies of subscription state (paper §3.3: "the
        f-closest neighbors of the primary owner along the ring").
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        primary = self.owner_of(key)
        ordered = sorted(
            self.nodes, key=lambda node_id: primary.distance(node_id)
        )
        return ordered[:replicas]

    # ------------------------------------------------------------------
    # wedge / structural queries
    # ------------------------------------------------------------------
    def wedge(self, channel: NodeId, level: int) -> list[NodeId]:
        """Live nodes in ``channel``'s level-``level`` wedge."""
        return wedge_members(channel, level, self.nodes, self.base)

    def base_level(self) -> int:
        """Current baselevel ``K = ceil(log_b N)``."""
        return base_level(len(self.nodes), self.base)

    def aggregation_rows(self) -> int:
        """Prefix depth at which every node is alone in its region.

        Cluster aggregation recurses region-by-region down to singleton
        regions; a routing-table entry at row ``r`` exists exactly when
        some pair of nodes shares ``r`` prefix digits, and the deepest
        such pair is always value-adjacent, so the answer is read off
        the maintained pair-depth histogram in O(1) per churn event.

        The legacy mode keeps the original table scan: after sampled
        repair a table may transiently miss its deepest entry, and the
        rebuild reference must reproduce that pre-incremental answer
        exactly.
        """
        if not self.incremental:
            deepest = 0
            for node in self.nodes.values():
                rows = node.table.occupied_rows()
                if rows:
                    deepest = max(deepest, rows[-1])
            return deepest + 1
        deepest = max(
            (
                depth
                for depth, count in self._pair_depths.items()
                if count > 0
            ),
            default=0,
        )
        return deepest + 1

    def routing_tables(self) -> Mapping[NodeId, RoutingTable]:
        """Live mapping node-id -> routing table (for DAG walks).

        The returned view is cached and always current — holders never
        need to re-fetch after membership changes, and per-message
        floods no longer materialize a dict per call.
        """
        return self._tables_view

    def node_ids(self) -> list[NodeId]:
        """All live node identifiers."""
        return list(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_nodes: int,
        base: int = 16,
        leaf_size: int = 8,
        seed: int = 0,
        address_prefix: str = "node",
        incremental: bool = True,
    ) -> "OverlayNetwork":
        """Construct an overlay of ``n_nodes`` with synthetic addresses."""
        network = cls(
            base=base,
            leaf_size=leaf_size,
            rng=random.Random(seed),
            incremental=incremental,
        )
        for index in range(n_nodes):
            network.add_node(f"{address_prefix}-{index}")
        return network


def build_overlay(
    n_nodes: int, base: int = 16, leaf_size: int = 8, seed: int = 0
) -> OverlayNetwork:
    """Convenience wrapper mirroring :meth:`OverlayNetwork.build`."""
    return OverlayNetwork.build(
        n_nodes=n_nodes, base=base, leaf_size=leaf_size, seed=seed
    )


def addresses(n_nodes: int, prefix: str = "node") -> Iterable[str]:
    """Synthetic node addresses used by tests and simulators."""
    return (f"{prefix}-{index}" for index in range(n_nodes))
