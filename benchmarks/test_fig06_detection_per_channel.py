"""Figure 6 — Update detection time per channel vs popularity rank.

Paper: "Popular channels gain greater decrease in update detection
time than less popular channels" — the Corona line starts far below
legacy at the head of the ranking and approaches it toward the tail.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.analysis.tables import format_scatter_summary


def test_fig06_detection_per_channel(benchmark, runner, scale):
    lite = benchmark.pedantic(
        lambda: runner.run("lite"), rounds=1, iterations=1
    )

    tau = 1800.0
    lite_latency = tau / 2.0 / np.maximum(1, lite.final_pollers)
    legacy_latency = np.full(scale.n_channels, tau / 2.0)
    ranks = np.arange(1, scale.n_channels + 1)
    artifact = format_scatter_summary(
        ranks,
        {
            "Legacy RSS": legacy_latency,
            "Corona Lite": lite_latency,
        },
        n_bands=10,
        value_name="s",
    )
    write_artifact(f"fig06_detection_per_channel_{scale.name}.txt", artifact)

    head = slice(0, max(1, scale.n_channels // 100))
    tail = slice(scale.n_channels - scale.n_channels // 10, scale.n_channels)

    # Shape 1: every non-orphan channel beats legacy's tau/2.
    non_orphan = lite.final_levels < lite.final_levels.max()
    if non_orphan.any():
        assert (lite_latency[non_orphan] < tau / 2.0).all()

    # Shape 2: the popular head gains about an order of magnitude more
    # than the tail (paper: "an order of magnitude better improvement").
    head_improvement = (tau / 2.0) / lite_latency[head].mean()
    tail_improvement = (tau / 2.0) / lite_latency[tail].mean()
    assert head_improvement > tail_improvement * 3

    # Shape 3: the measured (sampled) per-channel delays track the
    # analytic curve where updates were observed.  The paper's τ/(2n)
    # estimate understates the exact min-of-n-uniform-residuals mean
    # τ/(n+1) by a factor approaching 2 at large n, so the geometric
    # mean of measured/analytic sits between 1 and ~2.
    measured = lite.per_channel_delay
    seen = ~np.isnan(measured)
    if seen.sum() > 50:
        ratio = measured[seen] / lite_latency[seen]
        geo = float(np.exp(np.log(np.maximum(ratio, 1e-9)).mean()))
        assert 0.6 < geo < 2.6
