"""Per-round time-series sampling of registry counters and gauges.

:class:`TimelineSampler` turns the end-of-run scalar counters the
registry already maintains into *series*: the scenario runner calls
:meth:`TimelineSampler.sample` once per maintenance round, and the
sampler snapshots every unlabeled counter/gauge scalar into a bounded
in-memory ring.  A run can then answer "when did retransmissions
spike?" instead of only "how many total?".

Contract (the PR 6 latch, enforced by ``tests/obs``):

* **Read-only** — sampling reads metric values and touches nothing
  else: no randomness, no wall clocks, no protocol state.  A run with
  the sampler attached is byte-identical to one without, for every
  gated metric.
* **Bounded** — the ring holds at most ``capacity`` samples.  When it
  fills, the sampler decimates: every other retained sample is
  dropped and the sampling stride doubles, so a run of any length
  costs O(capacity) memory and keeps uniform (if coarsening) time
  resolution.  Because the stored values are *cumulative*, decimation
  loses resolution, never mass — deltas between retained points still
  sum to the true totals.
* **Deterministic** — same spec + seed ⇒ identical ``to_dict`` bytes.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, MetricsRegistry

__all__ = ["TimelineSampler"]


class TimelineSampler:
    """Snapshot registry scalars into a bounded cumulative time series.

    ``keys`` restricts sampling to named series; the default samples
    every unlabeled :class:`Counter`/:class:`Gauge` registered at the
    time of each snapshot (series that appear mid-run are backfilled
    with zeros so every column spans the full time axis).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        keys: tuple[str, ...] | None = None,
        capacity: int = 256,
    ) -> None:
        if capacity < 4 or capacity % 2:
            raise ValueError(
                f"capacity must be an even integer >= 4, got {capacity!r}"
            )
        self.registry = registry
        self.keys = tuple(keys) if keys is not None else None
        self.capacity = capacity
        #: Rounds between materialized samples; doubles on decimation.
        self.stride = 1
        #: Total rounds offered via :meth:`sample` (pre-decimation).
        self.rounds = 0
        self.times: list[float] = []
        self._series: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    def _scalar_names(self) -> list[str]:
        if self.keys is not None:
            return [
                name for name in self.keys
                if self.registry.get(name) is not None
            ]
        names = []
        for name in self.registry.names():
            metric = self.registry.get(name)
            if isinstance(metric, (Counter, Gauge)) and not metric.children():
                names.append(name)
        return names

    def sample(self, now: float) -> None:
        """Record one round's snapshot (stride-gated, decimating)."""
        self.rounds += 1
        if (self.rounds - 1) % self.stride:
            # Skipped rounds cost nothing: the columns are cumulative,
            # so the next retained sample still carries their counts.
            return
        position = len(self.times)
        self.times.append(now)
        names = self._scalar_names()
        for name in names:
            column = self._series.get(name)
            if column is None:
                # Late-appearing series: zero-fill history so every
                # column stays aligned with the time axis.
                column = [0.0] * position
                self._series[name] = column
            column.append(float(self.registry.value(name)))
        for name, column in self._series.items():
            if len(column) <= position:
                # Series that vanished (re-registration): carry the
                # last value forward to keep the columns rectangular.
                column.append(column[-1] if column else 0.0)
        if len(self.times) >= self.capacity:
            self._decimate()

    def _decimate(self) -> None:
        # Keep the first of each pair: retained points then sit exactly
        # on the doubled stride's grid, so post-decimation samples stay
        # uniformly spaced.  The dropped tail value is recovered by the
        # very next retained sample (the columns are cumulative).
        self.times = self.times[0::2]
        for name in self._series:
            self._series[name] = self._series[name][0::2]
        self.stride *= 2

    # ------------------------------------------------------------------
    def series(self, name: str) -> list[float]:
        """Cumulative column for one metric ([] if never sampled)."""
        return list(self._series.get(name, ()))

    def deltas(self, name: str) -> list[float]:
        """Per-retained-interval increments for one metric."""
        column = self._series.get(name)
        if not column:
            return []
        out = [column[0]]
        for previous, current in zip(column, column[1:]):
            out.append(current - previous)
        return out

    def to_dict(self) -> dict:
        """JSON-safe snapshot: time axis + cumulative/delta columns."""
        return {
            "rounds": self.rounds,
            "stride": self.stride,
            "capacity": self.capacity,
            "times": list(self.times),
            "series": {
                name: {
                    "cumulative": list(self._series[name]),
                    "deltas": self.deltas(name),
                }
                for name in sorted(self._series)
            },
        }
