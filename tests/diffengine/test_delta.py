"""Delta application: validation, composition, failure modes."""

import pytest

from repro.diffengine.delta import (
    DeltaError,
    apply_diff,
    compose,
    diff_size_bytes,
)
from repro.diffengine.differ import Diff, Hunk, HunkKind, diff_lines


class TestApplyValidation:
    def test_base_mismatch_raises(self):
        diff = diff_lines(["a", "b"], ["a", "X"], 1, 2)
        with pytest.raises(DeltaError):
            apply_diff(["a", "DIFFERENT"], diff)

    def test_hunk_beyond_end_raises(self):
        hunk = Hunk(
            kind=HunkKind.CHANGE,
            old_start=99,
            old_lines=("x",),
            new_start=99,
            new_lines=("y",),
        )
        diff = Diff(base_version=1, new_version=2, hunks=(hunk,))
        with pytest.raises(DeltaError):
            apply_diff(["a"], diff)

    def test_overlapping_hunks_raise(self):
        hunks = (
            Hunk(HunkKind.CHANGE, 1, ("a", "b"), 1, ("x",)),
            Hunk(HunkKind.CHANGE, 2, ("b",), 2, ("y",)),
        )
        diff = Diff(base_version=1, new_version=2, hunks=hunks)
        with pytest.raises(DeltaError):
            apply_diff(["a", "b", "c"], diff)

    def test_empty_diff_is_identity(self):
        diff = Diff(base_version=1, new_version=1, hunks=())
        assert apply_diff(["a", "b"], diff) == ["a", "b"]


class TestCompose:
    def test_chain_applies_in_order(self):
        v1 = ["a", "b"]
        v2 = ["a", "x", "b"]
        v3 = ["a", "x"]
        d12 = diff_lines(v1, v2, 1, 2)
        d23 = diff_lines(v2, v3, 2, 3)
        assert compose(v1, [d12, d23]) == v3

    def test_version_gap_rejected(self):
        v1, v2, v3 = ["a"], ["b"], ["c"]
        d12 = diff_lines(v1, v2, 1, 2)
        d34 = diff_lines(v2, v3, 3, 4)  # claims base 3, we have 2
        with pytest.raises(DeltaError):
            compose(v1, [d12, d34])

    def test_empty_chain(self):
        assert compose(["a"], []) == ["a"]


class TestSizeAccounting:
    def test_diff_size_positive_for_changes(self):
        diff = diff_lines(["a"], ["b"], 1, 2)
        assert diff_size_bytes(diff) > 0

    def test_diff_much_smaller_than_content(self):
        """Delta encoding wins: the wire size of a one-line change in a
        large document is a small fraction of the document (§3.4)."""
        old = [f"content line number {i} with some padding" for i in range(200)]
        new = list(old)
        new[100] = "the single changed line"
        diff = diff_lines(old, new, 1, 2)
        content_bytes = sum(len(line) + 1 for line in new)
        assert diff_size_bytes(diff) < content_bytes * 0.05
