"""Compile a :class:`ScenarioSpec` onto the event engine and run it.

The runner is the execution half of the scenario subsystem: it builds
the workload trace, the synthetic web-server farm and a
:class:`~repro.core.system.CoronaSystem`, schedules the protocol loops
(polls every ``poll_tick``, maintenance every maintenance interval)
and the spec's injected timeline on one
:class:`~repro.simulation.engine.EventEngine`, then collates a
:class:`ScenarioMetrics`.

Everything is seeded from one integer, so a scenario replay is
bit-for-bit deterministic: same spec + same seed ⇒ same metrics (the
CLI acceptance test and the example-parity tests rely on this).

The runner deliberately keeps its own execution loop rather than
wrapping :class:`~repro.simulation.deployment.DeploymentSimulator`:
the two differ in workload semantics (instant subscription for
window-less specs vs a mandatory timed trace), in what the timeline
may touch (the farm and latency model, not just the system), and in
collation (churn/registry accounting vs the paper's Figure 9/10
series).  They share the primitives — :meth:`EventEngine
.schedule_every`, :class:`TimeSeries`, the system's churn entry
points — which is the intended seam.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.system import CoronaSystem
from repro.faults import FaultPlane
from repro.faults.links import LinkTable, assign_topology, build_link_table
from repro.faults.plane import FaultCounters
from repro.obs import Observability
from repro.scenarios.invariants import InvariantMonitor
from repro.scenarios.spec import (
    ChurnWave,
    CorrelatedManagerFailure,
    FlashCrowd,
    LinkDegradation,
    MessageLoss,
    NetworkDegradation,
    NodeCrash,
    NodeJoin,
    NodeRecovery,
    Partition,
    PartitionHeal,
    ScenarioSpec,
    SubscriptionFlap,
    UpdateBurst,
)
from repro.simulation.engine import EventEngine
from repro.simulation.latency import LatencyModel
from repro.simulation.metrics import TimeSeries
from repro.simulation.webserver import WebServerFarm
from repro.workload.trace import generate_trace


#: Scenario-metric key → registry series backing it.  One entry here
#: (plus a slot in ``_COUNTER_KEY_ORDER``) is all it takes to surface
#: a new registry counter in scenario output — the collation path
#: below and ``to_dict`` are both driven by these tables.
REGISTRY_COUNTER_KEYS: tuple[tuple[str, str], ...] = (
    ("polls", "polls"),
    ("maintenance_messages", "maintenance_messages"),
    ("diff_messages", "diff_messages"),
    ("joins", "joins"),
    ("crashes", "crashes"),
    ("recoveries", "recoveries"),
    ("rehomed_channels", "rehomed_channels"),
    ("work_summaries_rebuilt", "work_summaries_rebuilt"),
    ("work_cluster_merges", "work_cluster_merges"),
    ("work_nodes_dirtied", "work_nodes_dirtied"),
    ("solver_work_problems_solved", "solver_work_problems_solved"),
    ("solver_work_memo_hits", "solver_work_memo_hits"),
    ("solver_work_shared_hits", "solver_work_shared_hits"),
    ("messages_dropped", "messages_dropped"),
    ("messages_duplicated", "messages_duplicated"),
    ("retransmissions", "retransmissions"),
    ("repair_diffs", "repair_diffs"),
    ("failed_polls", "failed_polls"),
    ("poll_retries", "poll_retries"),
    ("manager_failovers", "manager_failovers"),
    ("queued_messages", "queued_messages"),
    ("queue_drops", "queue_drops"),
    ("retries_suppressed", "retries_suppressed"),
    ("polls_shed", "polls_shed"),
)


@dataclass
class ScenarioMetrics:
    """Unified output of one scenario run (one variant).

    Scalars summarize the run; the three parallel lists are the
    bucketed load and detection series every scenario emits, whatever
    its timeline.  ``to_dict`` is JSON-safe and key-sorted rendering
    is deterministic under a fixed seed.

    The gated protocol/work/fault counters live in ``counters`` — one
    dict collated straight from the run's metrics registry (see
    ``REGISTRY_COUNTER_KEYS``) rather than three hand-rolled
    per-subsystem blocks — and stay reachable as attributes
    (``metrics.polls``…) through ``__getattr__``, so every historical
    call site and baseline key keeps working unchanged:

    * ``work_*`` — aggregation value-change counters (summaries whose
      committed value changed, contact contributions merged into
      those builds, node-dirtied accumulations).  Identical between
      delta and eager rounds, gated exactly by the CI baselines.
    * ``solver_work_*`` — optimization-phase execution counters.
      They legitimately differ between ``memo_solve`` and the eager
      reference; the baselines gate ``problems_solved`` and the
      memo+shared sum ``solver_work_solve_hits`` (which cache layer
      absorbs a given skipped solve can flip across processes).
    * fault counters — all zero on fault-free runs, deterministic
      under a fixed seed (the plane draws from its own generator),
      gated exactly like every other metric.
    """

    scenario: str
    variant: str
    seed: int
    horizon: float
    n_nodes_initial: int
    n_nodes_final: int
    n_channels: int
    total_subscriptions: int
    #: Subscriptions still registered on channel managers at the end
    #: of the run — under churn this equals ``total_subscriptions``
    #: only if §3.3 ownership transfer preserved every registry.
    final_registered_subscriptions: int
    injected_events: int
    server_polls: int
    updates_published: int
    detections: int
    #: Server-side refusals under per-IP rate limits (the poll was
    #: answered with the previous snapshot; staleness, not an error).
    rate_limited_polls: int
    #: Subscription-flap wave accounting (subscribe/unsubscribe calls
    #: issued by :class:`~repro.scenarios.spec.SubscriptionFlap`).
    flap_subscribes: int
    flap_unsubscribes: int
    mean_detection_delay: float
    legacy_detection_delay: float
    mean_polls_per_min: float
    legacy_polls_per_min: float
    max_channel_server_polls: int
    #: Registry-collated counters (see class docstring); includes the
    #: derived ``solver_work_solve_hits`` aggregate.
    counters: dict[str, int] = field(default_factory=dict)
    bucket_times: list[float] = field(default_factory=list)
    polls_per_min: list[float] = field(default_factory=list)
    detection_bucket_times: list[float] = field(default_factory=list)
    detection_delays: list[float] = field(default_factory=list)
    #: Invariant-monitor violations (``--check-invariants`` only).
    #: Deliberately excluded from ``to_dict``/``_HEAD_KEYS`` so the
    #: committed baseline bytes cannot depend on monitoring.
    violations: list = field(default_factory=list)

    def __getattr__(self, name: str) -> int:
        # Only consulted for names not found normally: resolve the
        # registry-collated counters (metrics.polls, metrics.joins …).
        counters = self.__dict__.get("counters")
        if counters is not None and name in counters:
            return counters[name]
        raise AttributeError(
            f"{type(self).__name__!s} has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    #: ``to_dict`` key order, byte-compatible with the pre-registry
    #: serialization (the committed baselines are written in it).
    _HEAD_KEYS = (
        "scenario",
        "variant",
        "seed",
        "horizon",
        "n_nodes_initial",
        "n_nodes_final",
        "n_channels",
        "total_subscriptions",
        "final_registered_subscriptions",
        "injected_events",
        "polls",
        "server_polls",
        "updates_published",
        "detections",
        "maintenance_messages",
        "diff_messages",
        "joins",
        "crashes",
        "recoveries",
        "rehomed_channels",
        "work_summaries_rebuilt",
        "work_cluster_merges",
        "work_nodes_dirtied",
        "solver_work_problems_solved",
        "solver_work_memo_hits",
        "solver_work_shared_hits",
        "solver_work_solve_hits",
        "messages_dropped",
        "messages_duplicated",
        "retransmissions",
        "repair_diffs",
        "failed_polls",
        "poll_retries",
        "manager_failovers",
        "queued_messages",
        "queue_drops",
        "retries_suppressed",
        "polls_shed",
        "rate_limited_polls",
        "flap_subscribes",
        "flap_unsubscribes",
        "mean_detection_delay",
        "legacy_detection_delay",
        "mean_polls_per_min",
        "legacy_polls_per_min",
        "max_channel_server_polls",
    )

    def to_dict(self) -> dict:
        """Plain JSON-safe dict (NaN becomes ``None``)."""
        def scrub(value):
            if isinstance(value, float) and math.isnan(value):
                return None
            return value

        out = {key: scrub(getattr(self, key)) for key in self._HEAD_KEYS}
        out["bucket_times"] = list(self.bucket_times)
        out["polls_per_min"] = list(self.polls_per_min)
        out["detection_bucket_times"] = list(self.detection_bucket_times)
        out["detection_delays"] = [
            scrub(v) for v in self.detection_delays
        ]
        return out

    def summary(self) -> str:
        """A deterministic human-readable digest for the CLI."""
        delay = (
            f"{self.mean_detection_delay:.1f}s"
            if not math.isnan(self.mean_detection_delay)
            else "n/a"
        )
        lines = [
            f"scenario {self.scenario}"
            + (f" [{self.variant}]" if self.variant != "base" else "")
            + f"  (seed {self.seed}, horizon {self.horizon / 60:.0f}min)",
            f"  population : {self.n_nodes_initial} -> "
            f"{self.n_nodes_final} nodes  "
            f"(joins {self.joins}, crashes {self.crashes}, "
            f"recoveries {self.recoveries}, "
            f"re-homed channels {self.rehomed_channels})",
            f"  workload   : {self.n_channels} channels, "
            f"{self.total_subscriptions} subscriptions "
            f"({self.final_registered_subscriptions} registered at end), "
            f"{self.updates_published} updates published, "
            f"{self.injected_events} injected events",
            f"  load       : {self.polls} corona polls "
            f"({self.mean_polls_per_min:.1f}/min vs legacy "
            f"{self.legacy_polls_per_min:.1f}/min), "
            f"hottest server {self.max_channel_server_polls} polls",
            f"  freshness  : {self.detections} detections, "
            f"mean delay {delay} "
            f"(legacy tau/2 = {self.legacy_detection_delay:.0f}s)",
            f"  messages   : {self.maintenance_messages} maintenance, "
            f"{self.diff_messages} diff",
            f"  agg work   : {self.work_summaries_rebuilt} summaries "
            f"rebuilt, {self.work_cluster_merges} cluster merges, "
            f"{self.work_nodes_dirtied} node-dirty events",
            f"  solve work : {self.solver_work_problems_solved} problems "
            f"solved, {self.solver_work_memo_hits} memo hits, "
            f"{self.solver_work_shared_hits} shared hits",
            f"  faults     : {self.messages_dropped} dropped, "
            f"{self.retransmissions} retransmits, "
            f"{self.repair_diffs} repairs, "
            f"{self.failed_polls} failed polls, "
            f"{self.rate_limited_polls} rate-limited, "
            f"{self.manager_failovers} manager failovers",
            f"  links      : {self.queued_messages} queued, "
            f"{self.queue_drops} queue drops, "
            f"{self.retries_suppressed} retries suppressed, "
            f"{self.polls_shed} polls shed",
        ]
        return "\n".join(lines)


class ScenarioRunner:
    """Execute one spec (and its variants) deterministically.

    ``obs`` carries a shared :class:`~repro.obs.Observability` plane
    into every run — e.g. the CLI's ``--trace`` tracer.  The default
    builds a fresh registry per run with tracing disabled; either way
    the metrics are byte-identical (``tests/obs`` enforce it).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: int = 0,
        obs: Observability | None = None,
        check_invariants: bool = False,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.seed = seed
        self.obs = obs
        #: Opt-in :class:`~repro.scenarios.invariants.InvariantMonitor`
        #: hooked after every maintenance round; the monitors are
        #: read-only, so the metrics stay byte-identical either way.
        self.check_invariants = check_invariants

    # ------------------------------------------------------------------
    def run(self, variant: str | None = None) -> ScenarioMetrics:
        """Run the base spec, or one named variant."""
        spec = self.spec
        label = "base"
        if variant is not None:
            spec = self.spec.variant_spec(variant)
            label = variant
        return _execute(
            spec,
            label,
            self.seed,
            obs=self.obs,
            check_invariants=self.check_invariants,
        )

    def run_all(self) -> dict[str, ScenarioMetrics]:
        """Every variant (or just the base spec), label → metrics."""
        labels = self.spec.variant_labels()
        if not labels:
            return {"base": self.run()}
        return {label: self.run(label) for label in labels}


# ----------------------------------------------------------------------
def _execute(
    spec: ScenarioSpec,
    label: str,
    seed: int,
    obs: Observability | None = None,
    check_invariants: bool = False,
) -> ScenarioMetrics:
    if obs is None:
        obs = Observability.off()
    tracer = obs.tracer
    # Optional introspection legs (repro report): both are read-only
    # observers — attached or not, gated metrics are byte-identical
    # (tests/obs/test_obs_equivalence.py).
    sampler = obs.timeline
    provenance = obs.provenance
    config = spec.corona_config()
    workload = spec.workload
    trace = generate_trace(
        n_channels=workload.n_channels,
        n_subscriptions=workload.n_subscriptions,
        zipf_exponent=workload.zipf_exponent,
        seed=seed,
        url_prefix=workload.url_prefix,
        subscription_window=workload.subscription_window,
        update_interval_scale=workload.update_interval_scale,
        content_size_scale=workload.content_size_scale,
        arrival=workload.arrival,
    )
    farm = WebServerFarm(
        seed=seed + 1, rate_limit_spacing=workload.rate_limit_spacing
    )
    for index, url in enumerate(trace.urls):
        farm.host(
            url,
            update_interval=float(trace.update_intervals[index]),
            target_bytes=int(trace.content_sizes[index]),
        )
    # One fault plane per run, always installed: inactive (the
    # fault-free default) it is bit-identical to no plane at all,
    # and the timeline's fault events mutate it in place.  Its
    # counters register on the run's registry alongside the system's,
    # which is where collation reads every gated counter back from.
    faults = FaultPlane(
        seed=seed + 5, counters=FaultCounters(obs.registry)
    )
    # One link table per run, always installed, like the plane itself:
    # inactive (no specs) it draws nothing and is bit-identical to no
    # table.  A declarative ``links`` topology pre-loads its group
    # matrix; link-degradation events impose/lift scoped specs on it.
    link_table = (
        build_link_table(spec.links, seed=seed + 7)
        if spec.links
        else LinkTable(seed=seed + 7)
    )
    faults.install_links(link_table)
    system = CoronaSystem(
        n_nodes=spec.n_nodes,
        config=config,
        fetcher=farm,
        seed=seed,
        delta_rounds=spec.delta_rounds,
        memo_solve=spec.memo_solve,
        faults=faults,
        obs=obs,
    )
    if spec.links:
        # Round-robin the initial population over the datacenters
        # (deterministic: system.nodes preserves creation order).
        # Nodes joining later sit outside every group — their links
        # stay clean, which is the conservative default.
        assign_topology(
            link_table, list(system.nodes), spec.links.get("dcs", 2)
        )

    def scheduled(name: str, fn):
        """Mark a timeline callback with a trace instant when it fires.

        Tracing off (the default) returns ``fn`` unchanged — the
        timeline runs the exact same callables it always did.
        """
        if not tracer.enabled:
            return fn

        def fire(now: float):
            tracer.instant(name, sim_time=now, category="scenario")
            return fn(now)

        return fire
    engine = EventEngine()
    latency = LatencyModel(seed=seed + 2)
    churn_rng = random.Random(seed + 3)
    crowd_rng = random.Random(seed + 4)
    # Partition membership sampling draws from its own generator so a
    # fault timeline never perturbs churn/crowd randomness.
    fault_rng = random.Random(seed + 6)

    poll_series = TimeSeries(spec.bucket_width)
    detect_series = TimeSeries(spec.bucket_width)
    detections = 0

    # -- subscriptions -------------------------------------------------
    if trace.events:
        for when, client, channel_index, subscribe in trace.events:
            url = trace.urls[channel_index]
            if subscribe:
                engine.schedule(
                    when,
                    lambda now, u=url, c=client: system.subscribe(u, c, now),
                )
            else:
                engine.schedule(
                    when,
                    lambda now, u=url, c=client: system.unsubscribe(u, c),
                )
    else:
        client = 0
        for channel_index, count in enumerate(trace.subscribers):
            url = trace.urls[channel_index]
            for _ in range(int(count)):
                system.subscribe(url, f"client-{client}", now=0.0)
                client += 1

    # -- injected timeline ---------------------------------------------
    injected = 0
    extra_subscriptions = 0
    flap_subscribes = 0
    flap_unsubscribes = 0
    #: Flap pools still subscribed when the run ends (their arrivals
    #: then count toward the reported subscription load, keeping
    #: ``final_registered_subscriptions == total_subscriptions``).
    flap_pools: list[tuple[dict, int]] = []

    def heal_by_name(name: str, now: float) -> None:
        # Shared by Partition auto-heal and explicit PartitionHeal;
        # guarded because whichever fires second is a no-op.  Routed
        # through the system so managers the failover detector
        # suspended behind the partition rejoin on heal (population
        # conservation).
        if name in faults.partitions:
            system.heal_partition(name, now=now)

    for event in spec.events:
        injected += 1
        if tracer.enabled:
            # One instant marker per injected event at its start time.
            # The callback touches nothing but the tracer, so metrics
            # stay byte-identical with tracing on (tests/obs assert
            # this); recurring events additionally mark each tick via
            # ``scheduled`` below.
            engine.schedule(
                min(event.at, spec.horizon),
                lambda now, _name=f"event.{type(event).__name__}": (
                    tracer.instant(_name, sim_time=now, category="scenario")
                ),
            )
        if isinstance(event, NodeJoin):
            engine.schedule(
                event.at,
                lambda now, ev=event: system.join_nodes(ev.count, now=now),
            )
        elif isinstance(event, NodeCrash):
            engine.schedule(
                event.at,
                lambda now, ev=event: system.crash_nodes(
                    ev.count, now=now, rng=churn_rng, target=ev.target
                ),
            )
        elif isinstance(event, NodeRecovery):
            engine.schedule(
                event.at,
                lambda now, ev=event: system.recover_nodes(
                    ev.count, now=now
                ),
            )
        elif isinstance(event, FlashCrowd):
            url = trace.urls[event.channel]
            offsets = sorted(
                crowd_rng.uniform(0.0, event.window)
                for _ in range(event.subscribers)
            )
            # Arrivals past the horizon never execute; only the ones
            # that land count toward the reported subscription load.
            arrivals = [
                offset for offset in offsets
                if event.at + offset <= spec.horizon
            ]
            for rank, offset in enumerate(arrivals):
                name = f"crowd-{event.channel}-{extra_subscriptions + rank}"
                engine.schedule(
                    event.at + offset,
                    lambda now, u=url, c=name: system.subscribe(u, c, now),
                )
            extra_subscriptions += len(arrivals)
            if event.update_factor != 1.0:
                # Relative acceleration (flash_crowd compounds), like
                # UpdateBurst below, so rate events compose in any
                # order; a crowd's speed-up is sticky for the run.
                engine.schedule(
                    event.at,
                    lambda now, u=url, ev=event: farm.flash_crowd(
                        u, ev.update_factor, now
                    ),
                )
        elif isinstance(event, UpdateBurst):
            hot = max(
                1, int(round(event.channel_fraction * trace.n_channels))
            )
            urls = trace.urls[:hot]

            # Bursts accelerate relatively and undo themselves by the
            # inverse factor, so a concurrent FlashCrowd's sticky
            # update_factor on the same channel survives the burst's
            # end whichever event fires first.
            def start_burst(now: float, us=urls, ev=event) -> None:
                for u in us:
                    farm.flash_crowd(u, ev.factor, now)

            def end_burst(now: float, us=urls, ev=event) -> None:
                for u in us:
                    farm.flash_crowd(u, 1.0 / ev.factor, now)

            engine.schedule(event.at, start_burst)
            engine.schedule(
                min(event.at + event.duration, spec.horizon), end_burst
            )
        elif isinstance(event, NetworkDegradation):
            # Token-scoped: each window restores exactly its own
            # factor, so overlapping events compose and the scale
            # lands back on the *true* baseline (no f × 1/f residue).
            degradation_token: dict = {}

            def start_degradation(
                now: float, ev=event, cell=degradation_token
            ) -> None:
                cell["token"] = latency.degrade(ev.latency_factor)

            def end_degradation(
                now: float, cell=degradation_token
            ) -> None:
                if "token" in cell:
                    latency.restore(cell.pop("token"))

            engine.schedule(event.at, start_degradation)
            engine.schedule(
                min(event.at + event.duration, spec.horizon),
                end_degradation,
            )
        elif isinstance(event, ChurnWave):

            def churn_tick(now: float, ev=event) -> None:
                # One tick = one batched crash wave and one batched
                # join wave (one aggregation repair each, not k).
                if ev.crashes_per_tick and len(system.nodes) > 1:
                    system.crash_nodes(
                        ev.crashes_per_tick,
                        now=now,
                        rng=churn_rng,
                        target=ev.target,
                    )
                if ev.joins_per_tick:
                    system.join_nodes(ev.joins_per_tick, now=now)

            engine.schedule_every(
                event.at,
                event.interval,
                scheduled("event.ChurnWave.tick", churn_tick),
                until=min(event.at + event.duration, spec.horizon),
            )
        elif isinstance(event, MessageLoss):
            # Additive compose + inverse undo, like NetworkDegradation:
            # overlapping loss events never cancel each other.
            engine.schedule(
                event.at,
                lambda now, ev=event: faults.add_loss(
                    ev.rate, ev.duplicate_rate, ev.jitter
                ),
            )
            engine.schedule(
                min(event.at + event.duration, spec.horizon),
                lambda now, ev=event: faults.remove_loss(
                    ev.rate, ev.duplicate_rate, ev.jitter
                ),
            )
        elif isinstance(event, Partition):
            # Which island *this* event opened, so its auto-heal timer
            # never closes a later same-named partition (the explicit
            # PartitionHeal event, by contrast, heals whatever is
            # open — that is its meaning).
            opened_island: dict = {}

            def open_partition(
                now: float, ev=event, cell=opened_island
            ) -> None:
                # Sampled from the population alive *now* — a churned
                # cloud partitions over its current membership.
                population = list(system.nodes)
                count = min(
                    len(population) - 1,
                    max(1, round(ev.fraction * len(population))),
                )
                members = fault_rng.sample(population, count)
                cell["island"] = faults.partition(
                    ev.name,
                    members=members,
                    fraction=ev.fraction,
                    isolates_servers=ev.isolates_servers,
                )

            def auto_heal(now: float, ev=event, cell=opened_island) -> None:
                island = cell.get("island")
                if (
                    island is not None
                    and faults.partitions.get(ev.name) is island
                ):
                    system.heal_partition(ev.name, now=now)

            engine.schedule(event.at, open_partition)
            if event.duration is not None:
                engine.schedule(
                    min(event.at + event.duration, spec.horizon),
                    auto_heal,
                )
        elif isinstance(event, PartitionHeal):
            engine.schedule(
                event.at,
                lambda now, name=event.name: heal_by_name(name, now),
            )
        elif isinstance(event, CorrelatedManagerFailure):
            # Victims drawn from the fault generator, like partition
            # membership: adding a fault-family event must not perturb
            # the churn/crowd randomness of the rest of the timeline.
            engine.schedule(
                event.at,
                lambda now, ev=event: system.crash_nodes(
                    ev.count, now=now, rng=fault_rng, target="managers"
                ),
            )
        elif isinstance(event, LinkDegradation):
            # Victims drawn from the fault generator (like partition
            # membership); the imposition handle makes the window
            # always-healing — the end event lifts exactly this
            # degradation, leaving overlapping ones intact.
            imposition: dict = {}

            def start_link_degradation(
                now: float, ev=event, cell=imposition
            ) -> None:
                population = list(system.nodes)
                count = min(
                    len(population),
                    max(1, round(ev.fraction * len(population))),
                )
                victims = fault_rng.sample(population, count)
                senders = (
                    victims
                    if ev.direction in ("outbound", "both")
                    else ()
                )
                recipients = (
                    victims
                    if ev.direction in ("inbound", "both")
                    else ()
                )
                cell["handle"] = link_table.impose(
                    ev.link_spec(),
                    senders=senders,
                    recipients=recipients,
                )

            def end_link_degradation(
                now: float, cell=imposition
            ) -> None:
                handle = cell.pop("handle", None)
                if handle is not None:
                    link_table.lift(handle)

            engine.schedule(event.at, start_link_degradation)
            engine.schedule(
                min(event.at + event.duration, spec.horizon),
                end_link_degradation,
            )
        elif isinstance(event, SubscriptionFlap):
            flap_urls = trace.urls[: event.channels]
            flap_state = {"on": False}
            flap_pools.append(
                (flap_state, len(flap_urls) * event.subscribers)
            )
            flap_prefix = f"flap{injected}"

            def flap_tick(
                now: float,
                ev=event,
                urls=flap_urls,
                state=flap_state,
                prefix=flap_prefix,
            ) -> None:
                nonlocal flap_subscribes, flap_unsubscribes
                subscribing = not state["on"]
                for rank, url in enumerate(urls):
                    for index in range(ev.subscribers):
                        client = f"{prefix}-{rank}-{index}"
                        if subscribing:
                            system.subscribe(url, client, now)
                        else:
                            system.unsubscribe(url, client)
                count = len(urls) * ev.subscribers
                if subscribing:
                    flap_subscribes += count
                else:
                    flap_unsubscribes += count
                state["on"] = subscribing

            engine.schedule_every(
                event.at,
                event.interval,
                scheduled("event.SubscriptionFlap.tick", flap_tick),
                until=min(event.at + event.duration, spec.horizon),
            )
        else:  # pragma: no cover - spec.validate() forbids this
            raise TypeError(f"unhandled event type {type(event)!r}")

    # -- protocol loops ------------------------------------------------
    maintenance = config.maintenance_interval

    monitor: InvariantMonitor | None = None
    if check_invariants:
        monitor = InvariantMonitor(spec, system, obs.registry)

    def maintenance_round(now: float) -> None:
        system.run_maintenance_round(now)
        if monitor is not None:
            # Read-only checks after the round settles: the monitor
            # draws no randomness and mutates nothing, so metrics are
            # byte-identical with monitoring on or off.
            monitor.check_round(now)
        if sampler is not None:
            # Snapshot the registry scalars into the run timeline —
            # reads only, after the round (and its checks) settled.
            sampler.sample(now)

    engine.schedule_every(
        maintenance * 0.5,
        maintenance,
        maintenance_round,
        until=spec.horizon,
    )

    def poll_round(now: float) -> None:
        nonlocal detections
        farm.advance_to(now)
        polls_before = system.counters.polls
        events = system.poll_due(now)
        polls_done = system.counters.polls - polls_before
        if polls_done:
            poll_series.add(now, float(polls_done))
        for event in events:
            if event.published_at is None:
                continue
            # The components are accumulated in the exact historical
            # order (same float-add sequence, same RNG draw order), so
            # the delay stream — and every baseline byte — is
            # unchanged by the provenance capture below.
            staleness = max(0.0, event.detected_at - event.published_at)
            delay = staleness
            # Per-link path delay the network model charged the diff
            # on its way to the manager (0.0 — and byte-identical —
            # without an active link table).
            delay += event.path_delay
            notify_delay = latency.sample()
            delay += notify_delay
            # Reorder jitter inflates end-to-end freshness (0.0 — and
            # no randomness — while the fault plane is jitter-free).
            jitter = faults.detection_jitter()
            delay += jitter
            detect_series.add(now, delay)
            detections += 1
            if provenance is not None:
                provenance.record(
                    url=event.url,
                    version=event.version,
                    published_at=event.published_at,
                    detected_at=event.detected_at,
                    staleness=staleness,
                    path_delay=event.path_delay,
                    delivery=notify_delay + jitter,
                    subscribers=event.subscribers,
                    detector=(
                        f"{event.detector.value:040x}"[:10]
                        if event.detector is not None
                        else None
                    ),
                    fanout=event.fanout,
                )

    engine.schedule_every(
        spec.poll_tick, spec.poll_tick, poll_round, until=spec.horizon
    )
    with tracer.span("scenario.run", sim_time=0.0, category="scenario") as run_span:
        engine.run_until(spec.horizon)
        if tracer.enabled:
            run_span.set(
                scenario=spec.name,
                variant=label,
                seed=seed,
                horizon=spec.horizon,
            )

    # -- collate -------------------------------------------------------
    tau = config.polling_interval
    for state, pool_size in flap_pools:
        if state["on"]:
            # The final wave ended subscribed: those clients are part
            # of the registered load the run hands back.
            extra_subscriptions += pool_size
    total_subscriptions = trace.total_subscriptions + extra_subscriptions
    registered = sum(
        system.nodes[manager].registry.count(url)
        for url, manager in system.managers.items()
    )
    delays = detect_series.means()
    mean_delay = float(np.nanmean(delays)) if len(delays) else float("nan")
    minutes = spec.horizon / 60.0
    poll_counts = farm.poll_counts()
    # One registry-driven serialization path for every gated counter:
    # the subsystems already registered their series (SystemCounters,
    # AggregationWork, SolverWork, FaultCounters), so collation is a
    # table lookup, not three hand-rolled per-subsystem blocks.
    counters = {
        key: int(obs.registry.value(name))
        for key, name in REGISTRY_COUNTER_KEYS
    }
    counters["solver_work_solve_hits"] = (
        counters["solver_work_memo_hits"]
        + counters["solver_work_shared_hits"]
    )
    violations: list = []
    if monitor is not None:
        monitor.check_final(
            spec.horizon,
            registered=registered,
            total_subscriptions=total_subscriptions,
        )
        violations = monitor.violations
    return ScenarioMetrics(
        scenario=spec.name,
        variant=label,
        seed=seed,
        horizon=spec.horizon,
        n_nodes_initial=spec.n_nodes,
        n_nodes_final=len(system.nodes),
        n_channels=trace.n_channels,
        total_subscriptions=total_subscriptions,
        final_registered_subscriptions=registered,
        injected_events=injected,
        server_polls=farm.total_polls,
        updates_published=farm.total_updates,
        detections=detections,
        counters=counters,
        rate_limited_polls=sum(
            hosted.rate_limited for hosted in farm.channels.values()
        ),
        flap_subscribes=flap_subscribes,
        flap_unsubscribes=flap_unsubscribes,
        mean_detection_delay=mean_delay,
        legacy_detection_delay=tau / 2.0,
        mean_polls_per_min=system.counters.polls / minutes,
        legacy_polls_per_min=total_subscriptions / tau * 60.0,
        max_channel_server_polls=max(poll_counts.values(), default=0),
        bucket_times=[float(t) for t in poll_series.times()],
        polls_per_min=[
            float(v) for v in poll_series.sums() / (spec.bucket_width / 60.0)
        ],
        detection_bucket_times=[float(t) for t in detect_series.times()],
        detection_delays=[float(v) for v in delays],
        violations=violations,
    )
