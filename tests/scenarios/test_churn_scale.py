"""The churn-scale-sweep scenario: determinism and targeted waves.

This scenario is the CI perf baseline for membership-change cost, so
its ``--json`` metrics must be bit-identical across in-process runs of
the same spec + seed, and its manager-targeted churn waves must
actually exercise the §3.3 ownership-transfer path at scale.
"""

import pytest

from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ChurnWave, ScenarioSpecError


class TestChurnWaveTarget:
    def test_target_validates(self):
        with pytest.raises(ScenarioSpecError):
            ChurnWave(at=0.0, target="everyone").validate()
        ChurnWave(at=0.0, target="managers").validate()
        ChurnWave(at=0.0, target="bystanders").validate()

    def test_round_trips_through_dict(self):
        spec = get_scenario("churn-scale-sweep")
        assert type(spec).from_dict(spec.to_dict()) == spec


class TestChurnScaleSweep:
    def test_registered_with_scale_variants(self):
        spec = get_scenario("churn-scale-sweep")
        assert spec.n_nodes == 512
        assert spec.variant_labels() == ["n512", "n1024", "n2048", "n4096"]
        assert spec.variant_spec("n1024").n_nodes == 1024
        assert spec.variant_spec("n2048").n_nodes == 2048
        assert spec.variant_spec("n4096").n_nodes == 4096
        wave = spec.events[0]
        assert isinstance(wave, ChurnWave)
        assert wave.target == "managers"

    def test_steady_state_4096_probe_registered(self):
        spec = get_scenario("steady-state-4096")
        assert spec.n_nodes == 4096
        assert spec.events == ()
        assert spec.delta_rounds is True

    def test_same_seed_is_bit_identical_across_runs(self):
        """Two in-process runs of spec+seed produce identical metrics."""
        spec = get_scenario("churn-scale-sweep")
        first = ScenarioRunner(spec, seed=3).run("n512").to_dict()
        second = ScenarioRunner(spec, seed=3).run("n512").to_dict()
        assert first == second

    def test_sweep_exercises_churn_with_state_intact(self):
        """The manager-targeted waves transfer state without loss."""
        metrics = ScenarioRunner(
            get_scenario("churn-scale-sweep"), seed=0
        ).run("n512")
        assert metrics.crashes >= 20
        assert metrics.joins >= 20
        # manager-targeted waves must have forced ownership transfers
        assert metrics.rehomed_channels > 0
        # §3.3 transfer keeps every registered subscription alive
        assert (
            metrics.final_registered_subscriptions
            == metrics.total_subscriptions
        )
        assert metrics.n_nodes_initial == 512
