"""Steady-state aggregation rounds: delta-driven vs the eager sweep.

The eager reference reloads every node's local summary and recomputes
every radius for every node each round — O(N · rows · base) summary
merges forever, even when nothing changed.  Delta rounds
(``delta_rounds=True``, the default) stamp summaries with value-change
epochs and rebuild only what moved, so a converged steady-state round
does no summary work at all.  This bench replays the aggregation
phase exactly as :meth:`CoronaSystem.run_aggregation_phase` drives it
(dirty-local load + two rounds) on a converged 1024-node population
and gates on the ≥5x PR acceptance floor (measured locally at several
orders of magnitude); the 4096-node probe extends the scale sweep and
is recorded, not gated.  Results land in
``BENCH_round_delta_1024.json`` so the trajectory is tracked across
PRs.
"""

import time

from benchmarks.conftest import write_artifact

from repro.honeycomb.aggregation import DecentralizedAggregator
from repro.honeycomb.clusters import ChannelFactors
from repro.overlay.network import OverlayNetwork

N_NODES = 1024
PROBE_NODES = 4096
#: The PR acceptance floor; a converged delta round short-circuits to
#: O(1), so the measured ratio is far above this.
MIN_SPEEDUP = 5.0


def synthetic_channels(node_id):
    """Deterministic per-node channel factors (some nodes own none)."""
    value = node_id.value
    if value % 3 == 0:
        return []
    return [
        (
            ChannelFactors(
                subscribers=1 + value % 13,
                size=100.0 + value % 900,
                update_interval=60.0 * (1 + value % 7),
                level=value % 4,
            ),
            value % 5 == 0,
            float(1 + value % 11),
        )
    ]


def build_converged(n_nodes: int, delta: bool) -> DecentralizedAggregator:
    overlay = OverlayNetwork.build(
        n_nodes, base=16, leaf_size=4, seed=5, address_prefix="delta"
    )
    aggregator = DecentralizedAggregator.for_overlay(
        overlay, bins=16, delta_rounds=delta
    )
    aggregator.load_local(synthetic_channels)
    aggregator.run_to_convergence()
    return aggregator


def steady_state_phase(aggregator: DecentralizedAggregator) -> None:
    """One maintenance round's aggregation phase, as the system runs it."""
    aggregator.refresh_locals(synthetic_channels)
    aggregator.run_round()
    aggregator.run_round()


def timed_phases(aggregator, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        steady_state_phase(aggregator)
        best = min(best, time.perf_counter() - start)
    return best


def test_steady_state_round_speedup_1024(benchmark):
    """Delta rounds must beat the eager sweep ≥5x once converged."""
    eager = build_converged(N_NODES, delta=False)
    delta = build_converged(N_NODES, delta=True)
    # Equal starting points, bit for bit — the speedup compares the
    # same computation, not different answers.
    assert delta.states == eager.states
    eager_seconds = timed_phases(eager, repeats=2)

    benchmark.pedantic(
        lambda: steady_state_phase(delta), rounds=5, iterations=1
    )
    delta_seconds = benchmark.stats.stats.min
    speedup = eager_seconds / delta_seconds
    # Steady state means steady: the timed phases changed no values in
    # either mode, so the states still agree afterwards.
    assert delta.states == eager.states
    assert delta.work.as_dict() == eager.work.as_dict()
    lines = [
        f"Steady-state aggregation phase at {N_NODES} nodes "
        "(dirty-local load + two rounds)",
        f"  eager sweep : {eager_seconds * 1000:10.2f} ms",
        f"  delta round : {delta_seconds * 1000:10.4f} ms",
        f"  speedup     : {speedup:10.0f} x  (floor {MIN_SPEEDUP:.0f}x)",
    ]
    write_artifact(
        "round_delta_1024.txt",
        "\n".join(lines),
        data={
            "n_nodes": N_NODES,
            "rows": delta.rows,
            "eager_seconds": eager_seconds,
            "delta_seconds": delta_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "work": delta.work.as_dict(),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"delta rounds only {speedup:.1f}x faster than the eager sweep "
        f"(floor {MIN_SPEEDUP}x): {eager_seconds:.4f}s vs "
        f"{delta_seconds:.4f}s"
    )


def test_steady_state_probe_4096(benchmark):
    """The scale-sweep probe: converged delta phases at 4096 nodes.

    Recorded (BENCH_round_delta_4096.json), not gated — the point is
    that the phase stays O(change) as N quadruples past the paper's
    1024-node evaluation scale.
    """
    aggregator = build_converged(PROBE_NODES, delta=True)
    benchmark.pedantic(
        lambda: steady_state_phase(aggregator), rounds=3, iterations=1
    )
    phase_seconds = benchmark.stats.stats.min
    assert all(
        state.horizon() == 0 for state in aggregator.states.values()
    )
    write_artifact(
        "round_delta_4096.txt",
        f"Steady-state delta aggregation phase at {PROBE_NODES} nodes: "
        f"{phase_seconds * 1000:.4f} ms",
        data={
            "n_nodes": PROBE_NODES,
            "rows": aggregator.rows,
            "delta_seconds": phase_seconds,
            "work": aggregator.work.as_dict(),
        },
    )


def test_churn_wave_reconverges_incrementally(benchmark):
    """After a churn splice, delta rounds only pay for the dirty region.

    Times ``rows`` delta rounds absorbing a 16-node crash + 16-node
    join wave at 1024 nodes — the reconvergence cost the §3.3
    one-digit-per-round propagation actually requires, which stays far
    below one eager round.
    """
    overlay = OverlayNetwork.build(
        N_NODES, base=16, leaf_size=4, seed=7, address_prefix="wave"
    )
    aggregator = DecentralizedAggregator.for_overlay(
        overlay, bins=16, delta_rounds=True
    )
    aggregator.load_local(synthetic_channels)
    aggregator.run_to_convergence()
    state = {"minted": 0}

    def churn_and_reconverge():
        victims = overlay.node_ids()[: 16]
        overlay.remove_nodes(victims)
        aggregator.remove_nodes(victims, rows=overlay.aggregation_rows())
        joined = []
        for _ in range(16):
            state["minted"] += 1
            joined.append(
                overlay.add_node(f"wave-join-{state['minted']}").node_id
            )
        aggregator.add_nodes(joined, rows=overlay.aggregation_rows())
        for _ in range(aggregator.rows + 1):
            steady_state_phase(aggregator)

    benchmark.pedantic(churn_and_reconverge, rounds=3, iterations=1)
    assert set(aggregator.states) == set(overlay.node_ids())
