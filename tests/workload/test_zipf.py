"""Zipf popularity: sampling, exact counts, exponent fitting."""

import numpy as np
import pytest

from repro.workload.zipf import (
    fit_zipf_exponent,
    harmonic_number,
    subscription_counts,
    zipf_popularity,
    zipf_sample,
)


class TestPopularity:
    def test_normalized(self):
        masses = zipf_popularity(1000, 0.5)
        assert masses.sum() == pytest.approx(1.0)
        assert (masses > 0).all()

    def test_monotone_decreasing(self):
        masses = zipf_popularity(100, 0.5)
        assert (np.diff(masses) <= 0).all()

    def test_exponent_zero_is_uniform(self):
        masses = zipf_popularity(10, 0.0)
        assert np.allclose(masses, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_popularity(0)
        with pytest.raises(ValueError):
            zipf_popularity(10, -0.5)


class TestSampling:
    def test_sample_range(self):
        rng = np.random.default_rng(1)
        ranks = zipf_sample(1000, 50, rng=rng)
        assert ranks.min() >= 0
        assert ranks.max() < 50

    def test_head_heavier_than_tail(self):
        rng = np.random.default_rng(2)
        ranks = zipf_sample(20000, 100, 0.5, rng=rng)
        head = (ranks < 10).sum()
        tail = (ranks >= 90).sum()
        assert head > tail

    def test_counts_sum_to_subscriptions(self):
        counts = subscription_counts(10000, 300, rng=np.random.default_rng(3))
        assert counts.sum() == 10000

    def test_exact_counts_deterministic(self):
        a = subscription_counts(10000, 300, exact=True)
        b = subscription_counts(10000, 300, exact=True)
        assert (a == b).all()
        assert a.sum() == 10000
        assert (np.diff(a) <= 0).all()  # monotone by rank


class TestFitting:
    def test_recovers_survey_exponent(self):
        """Generated workloads must reproduce the survey's Zipf(0.5)."""
        counts = subscription_counts(
            1_000_000, 5000, exponent=0.5, rng=np.random.default_rng(4)
        )
        fitted = fit_zipf_exponent(counts)
        assert 0.4 < fitted < 0.6

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([5.0]))

    def test_harmonic_number(self):
        assert harmonic_number(1, 0.5) == 1.0
        assert harmonic_number(4, 1.0) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)
        with pytest.raises(ValueError):
            harmonic_number(0, 0.5)
