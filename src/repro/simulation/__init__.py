"""Simulation substrate: everything the paper ran on real infrastructure.

The paper evaluates Corona against live web servers from PlanetLab;
this package supplies the simulated equivalents:

* :mod:`repro.simulation.engine` — a discrete-event core (time-ordered
  heap, cancellable events);
* :mod:`repro.simulation.latency` — a wide-area message delay model;
* :mod:`repro.simulation.webserver` — exogenous content servers:
  synthetic feeds with survey-calibrated update processes, conditional
  GET semantics, per-source rate limiting, flash-crowd hooks;
* :mod:`repro.simulation.legacy` — the legacy-RSS client baseline;
* :mod:`repro.simulation.metrics` — time series and per-channel
  statistics shared by all experiments;
* :mod:`repro.simulation.macro` — the scalable hybrid simulator behind
  the §5.1 experiments (1024 nodes, 20 000 channels, 10⁶ subs);
* :mod:`repro.simulation.deployment` — the message-level simulator
  behind the §5.2 PlanetLab experiments (80 full-protocol nodes).
"""

from repro.simulation.engine import EventEngine
from repro.simulation.latency import LatencyModel
from repro.simulation.legacy import LegacyClientPool
from repro.simulation.metrics import MetricsCollector, TimeSeries
from repro.simulation.webserver import WebServerFarm

__all__ = [
    "EventEngine",
    "LatencyModel",
    "LegacyClientPool",
    "MetricsCollector",
    "TimeSeries",
    "WebServerFarm",
]
