"""The Honeycomb solver: correctness against brute force, the paper's
accuracy guarantee, weighted clusters, and degenerate cases."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.honeycomb.problem import ChannelTradeoff, TradeoffProblem
from repro.honeycomb.solver import HoneycombSolver


def corona_like_channel(key, q, s, base=4, k=3):
    """A Corona-Lite-shaped tradeoff: latency vs load."""
    levels = tuple(range(k + 1))
    return ChannelTradeoff(
        key=key,
        levels=levels,
        f=tuple(q * base**level for level in levels),
        g=tuple(s * 100.0 / base**level for level in levels),
    )


def brute_force(problem):
    """Exact optimum by exhaustive enumeration (small instances)."""
    best = None
    channels = problem.channels
    for combo in itertools.product(
        *(range(len(channel.levels)) for channel in channels)
    ):
        cost = sum(
            ch.weight * ch.g[i] for ch, i in zip(channels, combo)
        )
        if cost <= problem.target:
            objective = sum(
                ch.weight * ch.f[i] for ch, i in zip(channels, combo)
            )
            if best is None or objective < best:
                best = objective
    return best


class TestAgainstBruteForce:
    @pytest.mark.parametrize("trial", range(25))
    def test_bracketing_guarantee(self, trial):
        """L*_u (relaxation) <= true optimum <= L*_d (returned), and
        the bracket differs in at most one channel — §3.2's accuracy
        claim, verified against exhaustive search."""
        rng = random.Random(trial)
        m, k = rng.randint(1, 6), rng.randint(1, 4)
        channels = [
            corona_like_channel(i, rng.uniform(1, 100), rng.uniform(1, 10), k=k)
            for i in range(m)
        ]
        target = rng.uniform(m * 2, m * 120)
        problem = TradeoffProblem(channels=channels, target=target)
        bracket = HoneycombSolver().solve_bracketing(problem)
        optimum = brute_force(problem)
        if optimum is None:
            assert not bracket.lower.feasible
            return
        assert bracket.lower.feasible
        assert bracket.lower.cost <= target + 1e-9
        assert bracket.upper.objective <= optimum + 1e-9
        assert optimum <= bracket.lower.objective + 1e-9
        differing = sum(
            1
            for key in bracket.lower.levels
            if bracket.lower.levels[key] != bracket.upper.levels[key]
        )
        assert differing <= 1

    def test_scan_agrees_with_bracketing(self):
        rng = random.Random(99)
        for _ in range(20):
            m = rng.randint(1, 8)
            channels = [
                corona_like_channel(i, rng.uniform(1, 50), rng.uniform(1, 5))
                for i in range(m)
            ]
            problem = TradeoffProblem(
                channels=channels, target=rng.uniform(10, 400)
            )
            solver = HoneycombSolver()
            fast = solver.solve(problem)
            slow = solver.solve_scan(problem)
            assert abs(fast.objective - slow.objective) < 1e-9
            assert abs(fast.cost - slow.cost) < 1e-9


class TestWeightedClusters:
    def test_cluster_behaves_like_identical_channels(self):
        """A weight-w entry must give the same aggregate as w copies."""
        solver = HoneycombSolver()
        single = corona_like_channel("x", 10.0, 2.0)
        cluster_problem = TradeoffProblem(
            channels=[
                ChannelTradeoff(
                    key="cluster",
                    levels=single.levels,
                    f=single.f,
                    g=single.g,
                    weight=7,
                )
            ],
            target=700.0,
        )
        copies_problem = TradeoffProblem(
            channels=[
                ChannelTradeoff(
                    key=f"copy{i}",
                    levels=single.levels,
                    f=single.f,
                    g=single.g,
                )
                for i in range(7)
            ],
            target=700.0,
        )
        clustered = solver.solve(cluster_problem)
        individual = solver.solve(copies_problem)
        assert abs(clustered.cost - individual.cost) < 1e-9
        assert abs(clustered.objective - individual.objective) < 1e-9

    def test_split_cluster_counts_add_up(self):
        solver = HoneycombSolver()
        problem = TradeoffProblem(
            channels=[
                ChannelTradeoff(
                    key="c",
                    levels=(0, 1, 2),
                    f=(1.0, 4.0, 16.0),
                    g=(100.0, 25.0, 6.25),
                    weight=10,
                )
            ],
            target=400.0,
        )
        solution = solver.solve(problem)
        assert solution.feasible
        split = solution.splits.get("c")
        assert split is not None
        assert split.count_low + split.count_high == 10
        assert split.count_low > 0 and split.count_high > 0

    def test_partial_split_exactly_meets_budget(self):
        """The final partial move stops as soon as feasibility holds
        (the one-channel granularity of the accuracy guarantee)."""
        solver = HoneycombSolver()
        problem = TradeoffProblem(
            channels=[
                ChannelTradeoff(
                    key="c",
                    levels=(0, 1),
                    f=(0.0, 1.0),
                    g=(10.0, 0.0),
                    weight=100,
                )
            ],
            target=505.0,
        )
        solution = solver.solve(problem)
        # 100 members at g=10 cost 1000; need to move 50 to reach 500.
        assert solution.cost <= 505.0
        assert solution.cost > 505.0 - 10.0 - 1e-9


class TestDegenerateCases:
    def test_empty_problem(self):
        solution = HoneycombSolver().solve(TradeoffProblem(target=5.0))
        assert solution.feasible
        assert solution.levels == {}

    def test_unconstrained_optimum_when_budget_ample(self):
        channel = corona_like_channel("x", 5.0, 1.0)
        problem = TradeoffProblem(channels=[channel], target=1e9)
        solution = HoneycombSolver().solve(problem)
        assert solution.levels["x"] == 0  # min f sits at level 0
        assert solution.objective == channel.f[0]

    def test_infeasible_flagged(self):
        channel = corona_like_channel("x", 5.0, 1.0)
        # Even the cheapest corner costs more than the target.
        problem = TradeoffProblem(channels=[channel], target=0.01)
        solution = HoneycombSolver().solve(problem)
        assert not solution.feasible
        assert solution.levels["x"] == channel.levels[-1]

    def test_single_level_channel_is_fixed_cost(self):
        fixed = ChannelTradeoff(key="o", levels=(3,), f=(9.0,), g=(1.0,))
        flexible = corona_like_channel("x", 5.0, 1.0)
        problem = TradeoffProblem(channels=[fixed, flexible], target=30.0)
        solution = HoneycombSolver().solve(problem)
        assert solution.levels["o"] == 3

    def test_validation_rejects_nonmonotone(self):
        bad = ChannelTradeoff(
            key="bad", levels=(0, 1, 2), f=(1.0, 3.0, 2.0), g=(3.0, 1.0, 2.0)
        )
        with pytest.raises(ValueError):
            HoneycombSolver(validate=True).solve(
                TradeoffProblem(channels=[bad], target=10.0)
            )

    def test_iterations_logarithmic(self):
        """The bracketing search runs in O(log(M log N)) probes."""
        channels = [
            corona_like_channel(i, 1.0 + i % 17, 1.0 + i % 5)
            for i in range(2000)
        ]
        problem = TradeoffProblem(channels=channels, target=50_000.0)
        bracket = HoneycombSolver().solve_bracketing(problem)
        assert bracket.iterations <= 20


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=1e4),
            st.floats(min_value=0.1, max_value=1e3),
        ),
        min_size=1,
        max_size=12,
    ),
    st.floats(min_value=1.0, max_value=1e5),
)
@settings(max_examples=60, deadline=None)
def test_solution_always_respects_monotone_structure(params, target):
    """Property: the returned assignment is always a valid level per
    channel, cost is consistent with the assignment, and feasibility is
    reported truthfully."""
    channels = [
        corona_like_channel(index, q, s) for index, (q, s) in enumerate(params)
    ]
    problem = TradeoffProblem(channels=channels, target=target)
    solution = HoneycombSolver().solve(problem)
    recomputed_cost = 0.0
    recomputed_objective = 0.0
    for channel in channels:
        level = solution.levels[channel.key]
        assert level in channel.levels
        index = channel.levels.index(level)
        recomputed_cost += channel.g[index]
        recomputed_objective += channel.f[index]
    assert abs(recomputed_cost - solution.cost) < 1e-6 * max(
        1.0, abs(solution.cost)
    )
    assert solution.feasible == (solution.cost <= target + 1e-9)
