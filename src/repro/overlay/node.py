"""Pastry nodes: routing state plus the route/join/repair operations.

A :class:`PastryNode` owns a routing table and a leaf set and knows how
to make one routing decision.  Multi-hop routing, joining, and failure
repair are orchestrated by :class:`repro.overlay.network.OverlayNetwork`,
which plays the role of the (simulated) wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.overlay.leafset import LeafSet
from repro.overlay.nodeid import NodeId
from repro.overlay.routing import RoutingTable


@dataclass
class PastryNode:
    """One overlay node: identifier, routing table, leaf set.

    ``address`` is the stable name the identifier was hashed from (an
    IP in the paper; a label in the simulators).
    """

    node_id: NodeId
    base: int
    address: str = ""
    leaf_size: int = 8
    table: RoutingTable = field(init=False)
    leaves: LeafSet = field(init=False)

    def __post_init__(self) -> None:
        self.table = RoutingTable(owner=self.node_id, base=self.base)
        self.leaves = LeafSet(owner=self.node_id, size=self.leaf_size)

    # ------------------------------------------------------------------
    def observe(self, other: NodeId) -> None:
        """Learn about another node; file it wherever it fits."""
        if other == self.node_id:
            return
        self.table.observe(other)
        self.leaves.observe(other)

    def forget(self, failed: NodeId) -> bool:
        """Erase a failed node from all routing state.

        Returns True if any state actually changed (callers today use
        the removal for its side effect; the bool keeps the API honest
        about whether the node was known at all).
        """
        lost_contact = self.table.remove(failed)
        lost_leaf = self.leaves.remove(failed)
        return lost_contact or lost_leaf

    # ------------------------------------------------------------------
    def route_step(self, key: NodeId) -> NodeId | None:
        """Return the next hop toward ``key``, or None if we are it.

        Standard Pastry: if the key falls within the leaf-set span,
        jump straight to the numerically closest leaf (None when that
        is us).  Otherwise forward along the routing table; if the
        required slot is empty, fall back to the numerically closest
        known contact that is strictly closer to the key than we are.
        """
        if key == self.node_id:
            return None
        if self.leaves.covers(key):
            closest = self.leaves.closest(key)
            return None if closest == self.node_id else closest
        hop = self.table.next_hop(key)
        if hop is not None:
            return hop
        return self._rare_case_hop(key)

    def _rare_case_hop(self, key: NodeId) -> NodeId | None:
        """Pastry's "rare case": no table entry, key outside leaf span.

        Forward to any known node whose prefix match is at least as
        long as ours and which is numerically closer to the key;
        guarantees progress and hence termination.
        """
        own_prefix = self.node_id.shared_prefix_len(key, self.base)
        own_distance = LeafSet._ownership_distance(self.node_id, key)
        best: NodeId | None = None
        best_distance = own_distance
        for candidate in self.known_nodes():
            if candidate.shared_prefix_len(key, self.base) < own_prefix:
                continue
            distance = LeafSet._ownership_distance(candidate, key)
            if distance < best_distance:
                best, best_distance = candidate, distance
        return best

    def closest_known(
        self, key: NodeId, exclude: set[NodeId] | None = None
    ) -> NodeId | None:
        """A known node strictly closer to ``key`` than we are, if any.

        Pure greedy distance descent — the loop-free fallback used when
        prefix routing stalls on inconsistent state (mid-join): ring
        distance strictly decreases on every such hop, so routing
        always terminates.  ``exclude`` filters out already-visited
        nodes.
        """
        own_distance = LeafSet._ownership_distance(self.node_id, key)
        best: NodeId | None = None
        best_distance = own_distance
        for candidate in self.known_nodes():
            if exclude and candidate in exclude:
                continue
            distance = LeafSet._ownership_distance(candidate, key)
            if distance < best_distance:
                best, best_distance = candidate, distance
        return best

    # ------------------------------------------------------------------
    def known_nodes(self) -> list[NodeId]:
        """Every distinct contact across routing table and leaf set."""
        seen: dict[NodeId, None] = {}
        for contact in self.table.contacts():
            seen[contact] = None
        for leaf in self.leaves.members():
            seen[leaf] = None
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PastryNode({self.node_id.hex()[:8]}…, b={self.base})"
