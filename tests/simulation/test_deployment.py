"""Deployment simulator: the full protocol under the event clock."""

import numpy as np
import pytest

from repro.core.config import CoronaConfig
from repro.simulation.deployment import DeploymentSimulator
from repro.workload.trace import generate_trace


@pytest.fixture(scope="module")
def deployment_result():
    trace = generate_trace(
        n_channels=120,
        n_subscriptions=1200,
        seed=23,
        subscription_window=900.0,
    )
    config = CoronaConfig(
        polling_interval=900.0, maintenance_interval=900.0, base=4
    )
    sim = DeploymentSimulator(
        trace,
        config,
        n_nodes=24,
        seed=6,
        horizon=2 * 3600.0,
        bucket_width=900.0,
        poll_tick=30.0,
    )
    return sim.run(), trace, config


class TestDeployment:
    def test_detections_happen(self, deployment_result):
        result, _, _ = deployment_result
        assert result.detections > 0

    def test_corona_faster_than_legacy(self, deployment_result):
        """Figure 9's shape: Corona's detection time sits well below
        the legacy τ/2."""
        result, _, _ = deployment_result
        steady = np.nanmean(result.detection_times[len(result.detection_times) // 2 :])
        assert steady < result.legacy_detection_time * 0.7

    def test_load_bounded_near_legacy(self, deployment_result):
        """Figure 10's shape: total polls/min at or below the legacy
        level (generous tolerance for small-N level granularity)."""
        result, _, _ = deployment_result
        steady = result.corona_polls_per_min[-2:].mean()
        assert steady <= result.legacy_polls_per_min * 1.8

    def test_poll_accounting_consistent(self, deployment_result):
        result, _, _ = deployment_result
        assert result.total_polls > 0
        assert result.final_poll_tasks > 0

    def test_redundant_diffs_minority(self, deployment_result):
        result, _, _ = deployment_result
        assert result.redundant_diffs <= max(10, result.detections)

    def test_requires_timed_trace(self):
        trace = generate_trace(n_channels=10, n_subscriptions=20, seed=1)
        with pytest.raises(ValueError):
            DeploymentSimulator(trace, CoronaConfig(), n_nodes=4)


class TestInjectionHooks:
    """The fault-injection entry points the scenario subsystem uses."""

    @staticmethod
    def _simulator(**kwargs):
        trace = generate_trace(
            n_channels=20,
            n_subscriptions=120,
            seed=3,
            subscription_window=600.0,
        )
        config = CoronaConfig(
            polling_interval=600.0, maintenance_interval=600.0, base=4
        )
        return DeploymentSimulator(
            trace,
            config,
            n_nodes=12,
            seed=2,
            horizon=3600.0,
            bucket_width=600.0,
            poll_tick=30.0,
            **kwargs,
        )

    def test_injections_run_against_the_system(self):
        observed = []

        def crash_two(system, now):
            observed.append((now, len(system.nodes)))
            system.crash_nodes(2, now=now)

        sim = self._simulator(injections=[(1800.0, crash_two)])
        sim.run()
        assert observed == [(1800.0, 12)]
        assert len(sim.system.nodes) == 10
        assert sim.system.counters.crashes == 2

    def test_custom_latency_model_is_used(self):
        from repro.simulation.latency import LatencyModel

        slow = LatencyModel(seed=9)
        slow.degrade(1000.0)
        fast_run = self._simulator().run()
        slow_run = self._simulator(latency=slow).run()
        # protocol behaviour is identical; measured end-to-end
        # freshness absorbs the injected dissemination latency
        assert slow_run.detections == fast_run.detections
        assert slow_run.mean_detection_time > fast_run.mean_detection_time
