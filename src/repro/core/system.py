"""The Corona cloud, assembled end to end.

:class:`CoronaSystem` glues the overlay, the protocol nodes, the
decentralized aggregator and a content fetcher into one synchronously
driven system — the facade used by the examples, the integration tests
and the deployment simulator's inner loop.

Time is explicit: callers invoke :meth:`poll_due` and
:meth:`run_maintenance_round` with monotonically increasing ``now``
values (the discrete-event simulator does this with fine granularity;
the examples use coarse steps).
"""

from __future__ import annotations

import dataclasses
import logging
import random
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.channel import Channel
from repro.core.config import CoronaConfig
from repro.core.maintenance import DiffMsg, MaintenanceMsg
from repro.core.node import CoronaNode, DetectionEvent, FetchResult
from repro.core.dissemination import deliver_plan, wedge_recipients
from repro.faults import FaultPlane
from repro.diffengine.differ import Diff
from repro.honeycomb.aggregation import DecentralizedAggregator
from repro.honeycomb.solver import SolverWork
from repro.obs import NULL_SPAN, Observability, get_logger
from repro.obs.log import RateLimited
from repro.obs.metrics import CounterStruct
from repro.overlay.hashing import channel_id
from repro.overlay.network import OverlayNetwork
from repro.overlay.nodeid import NodeId


_log = get_logger(__name__)


class Fetcher:
    """Interface the content substrate implements.

    ``fetch`` performs one HTTP poll; ``published_at`` exposes the
    ground-truth publication time of the current version for metrics
    (simulation only — the protocol never reads it).
    """

    def fetch(
        self, url: str, now: float, source: str = "corona"
    ) -> FetchResult:  # pragma: no cover
        raise NotImplementedError

    def published_at(self, url: str) -> float | None:  # pragma: no cover
        return None


class SystemCounters(CounterStruct):
    """Aggregate counters across the cloud, for tests and benches.

    ``detections``/``redundant_diffs`` register under prefixed names:
    the scenario runner owns the unqualified ``detections`` semantics
    (fresh-content detections with ground-truth timing), which differ
    from this struct's raw dissemination count.
    """

    SERIES = (
        ("polls", "polls", "cooperative polls issued by the cloud"),
        ("diff_messages", "diff_messages", "diff messages disseminated"),
        (
            "maintenance_messages",
            "maintenance_messages",
            "maintenance flood messages sent",
        ),
        (
            "detections",
            "system_detections",
            "update detections disseminated by the cloud",
        ),
        (
            "redundant_diffs",
            "system_redundant_diffs",
            "duplicate diff deliveries suppressed by managers",
        ),
        ("joins", "joins", "nodes spliced into the overlay"),
        ("crashes", "crashes", "node crashes processed"),
        (
            "recoveries",
            "recoveries",
            "crashed nodes re-admitted through the join path",
        ),
        (
            "rehomed_channels",
            "rehomed_channels",
            "channels re-homed after joins and crashes",
        ),
    )


class CoronaSystem:
    """A complete Corona deployment driven in synchronous steps."""

    def __init__(
        self,
        n_nodes: int,
        config: CoronaConfig,
        fetcher: Fetcher,
        seed: int = 0,
        notifier: Callable[[str, Iterable[str], Diff, float], None] | None = None,
        incremental_churn: bool = True,
        delta_rounds: bool = True,
        memo_solve: bool = True,
        faults: FaultPlane | None = None,
        obs: Observability | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.config = config
        self.fetcher = fetcher
        #: Observability plane: the metrics registry backing every
        #: counter below plus the (default-disabled) phase tracer.
        #: Never consulted for protocol decisions — enabling or
        #: disabling it leaves runs byte-identical.
        self.obs = obs if obs is not None else Observability.off()
        #: Message-delivery fault model every dissemination hop, wedge
        #: flood and server poll is routed through.  ``None`` (and an
        #: inactive plane) is bit-identical to perfect delivery — the
        #: fault paths below are all gated on the plane being active.
        self.faults = faults
        #: Consecutive maintenance rounds in which a manager's floods
        #: all died (unresponsiveness evidence, fault runs only).
        self._manager_silent_rounds: dict[NodeId, int] = {}
        #: Crashed nodes eligible for recovery, in crash order: the
        #: (id, address) pairs :meth:`recover_nodes` re-admits.  The
        #: address is the identity — rejoining under it reproduces the
        #: original node id, so re-homed channels move back.
        self._crashed_pool: list[tuple[NodeId, str]] = []
        #: Managers declared dead only because a partition silenced
        #: them, keyed by partition name: :meth:`heal_partition`
        #: re-admits them so partition scenarios conserve population.
        self._partition_suspended: dict[str, list[tuple[NodeId, str]]] = {}
        #: Channels whose digest may have moved past a wedge member
        #: since the last clean repair pass: marked on every content
        #: change and manager move (fault runs only), cleared per url
        #: by a pass that shipped every needed repair.  The repair
        #: scan walks only these, making anti-entropy O(change) —
        #: a url outside the set provably has no lagging member, so
        #: skipping it performs zero transmit draws, exactly like the
        #: full scan that found nothing.
        self._repair_dirty_urls: set[str] = set()
        #: False restores the pre-incremental churn paths (full
        #: aggregator rebuild + anchor rescan per membership event,
        #: sampled overlay repair) — the benchmarks' rebuild reference.
        self.incremental_churn = incremental_churn
        #: False restores the eager aggregation sweep (every node
        #: reloads its local summary and recomputes every radius every
        #: round) — the round-delta benchmark's reference.  Metrics are
        #: bit-identical between the modes; only the work performed
        #: differs.
        self.delta_rounds = delta_rounds
        #: False restores the eager optimization phase (every manager
        #: rebuilds and re-solves its instance every round) — the
        #: solve-memo benchmark's reference.  As with ``delta_rounds``,
        #: metrics are bit-identical; only the solver work differs
        #: (see :attr:`solver_work`).
        self.memo_solve = memo_solve
        #: Cloud-wide solver counters, shared by every node's solver.
        self.solver_work = SolverWork(self.obs.registry)
        self.overlay = OverlayNetwork.build(
            n_nodes,
            base=config.base,
            leaf_size=config.replicas + 1,
            seed=seed,
            incremental=incremental_churn,
        )
        self.nodes: dict[NodeId, CoronaNode] = {
            node_id: CoronaNode(
                node_id,
                config,
                rng_seed=seed,
                notifier=notifier,
                memo_solve=memo_solve,
                solver_work=self.solver_work,
                on_factors_changed=self._mark_owner_dirty,
            )
            for node_id in self.overlay.node_ids()
        }
        self.aggregator = DecentralizedAggregator.for_overlay(
            self.overlay,
            bins=config.tradeoff_bins,
            delta_rounds=delta_rounds,
            registry=self.obs.registry,
        )
        self.managers: dict[str, NodeId] = {}
        self.counters = SystemCounters(self.obs.registry)
        #: Debug-noise throttle: per-event-key budget so fault storms
        #: (thousands of drops) cannot drown a ``-vv`` run.
        self._limited_log = RateLimited(_log, budget=8)
        self.detections: list[DetectionEvent] = []
        self._join_counter = 0
        #: Anchor index: per managed channel, the cached channel id and
        #: the current manager's ``(prefix, -ring distance)`` anchor
        #: key.  A join then re-homes exactly the channels a newcomer's
        #: key beats — one O(1) comparison per channel — instead of
        #: recomputing every channel's anchor over the population.
        self._channel_cids: dict[str, NodeId] = {}
        self._anchor_index: dict[str, tuple[int, int]] = {}
        # Victim selection for crash_nodes when no rng is supplied:
        # seeded from the system seed (string seeding hashes via
        # SHA-512, so it is stable across processes) and advancing
        # across calls, so successive crash waves draw independently.
        self._churn_rng = random.Random(f"corona-churn-{seed}")

    def _mark_owner_dirty(self, node_id: NodeId) -> None:
        """Structural dirty hook: a node's channel factors moved.

        Wired into every :class:`CoronaNode` as ``on_factors_changed``
        and fired by the stats objects themselves, so any mutation
        path — including ones added after this facade — lands in the
        aggregator's dirty-local set without a per-call-site
        convention.  Guarded because adoption during construction can
        fire before the aggregator exists (everyone starts dirty
        anyway).
        """
        aggregator = getattr(self, "aggregator", None)
        if aggregator is not None:
            aggregator.mark_local_dirty(node_id)

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, url: str, client: str, now: float = 0.0) -> NodeId:
        """Route a subscription to the channel's manager; returns it.

        The manager's subscriber-count update dirties it structurally
        (see :meth:`_mark_owner_dirty`) — no explicit mark needed.
        """
        manager_id = self._manager_for(url, now)
        self.nodes[manager_id].subscribe(url, client, now)
        return manager_id

    def unsubscribe(self, url: str, client: str) -> bool:
        """Remove one subscription (no-op on unknown channels)."""
        manager_id = self.managers.get(url)
        if manager_id is None:
            return False
        return self.nodes[manager_id].unsubscribe(url, client)

    def _cid(self, url: str) -> NodeId:
        cid = self._channel_cids.get(url)
        if cid is None:
            cid = channel_id(url)
            self._channel_cids[url] = cid
        return cid

    def _anchor_key(self, node_id: NodeId, cid: NodeId) -> tuple[int, int]:
        """The ordering :meth:`OverlayNetwork.anchor_of` maximizes."""
        return self.overlay.anchor_key(node_id, cid)

    def _manager_for(self, url: str, now: float) -> NodeId:
        manager_id = self.managers.get(url)
        if manager_id is not None:
            return manager_id
        cid = self._cid(url)
        anchor = self.overlay.anchor_of(cid)
        prefix = anchor.shared_prefix_len(cid, self.config.base)
        self.nodes[anchor].adopt_channel(
            url,
            max_level=self.overlay.base_level(),
            anchor_prefix=prefix,
            now=now,
        )
        self.managers[url] = anchor
        self._anchor_index[url] = self._anchor_key(anchor, cid)
        return anchor

    # ------------------------------------------------------------------
    # churn (§3.3)
    # ------------------------------------------------------------------
    def add_node(self, address: str, now: float = 0.0) -> NodeId:
        """Join a new node; channels it now anchors move to it.

        The join protocol gives the newcomer routing state; channels
        whose identifier it matches best become its responsibility,
        with subscription state transferred from the previous manager
        ("a node that becomes a new owner receives the state from
        other owners of the channel", §3.3).  Returns the new node id.

        A single join is a wave of one; see :meth:`join_nodes` for the
        batch entry point churn timelines use.
        """
        return self._join_wave([address], now=now)[0]

    def _join_wave(self, addresses: list[str], now: float) -> list[NodeId]:
        """Join a wave of nodes with one aggregation repair.

        The incremental path splices the newcomers into the aggregator
        (survivors keep every summary of an unchanged prefix region)
        and consults the anchor index to re-home exactly the channels
        some newcomer now anchors; the rebuild path reconstructs the
        aggregator and rescans every channel per join, as the system
        did before incremental churn.
        """
        joined: list[NodeId] = []
        for address in addresses:
            pastry_node = self.overlay.add_node(address)
            node = CoronaNode(
                pastry_node.node_id,
                self.config,
                rng_seed=len(self.nodes),
                memo_solve=self.memo_solve,
                solver_work=self.solver_work,
                on_factors_changed=self._mark_owner_dirty,
            )
            self.nodes[pastry_node.node_id] = node
            joined.append(pastry_node.node_id)
            if not self.incremental_churn:
                self._rebuild_aggregator()
                self._rehome_after_join(
                    [pastry_node.node_id], now, use_index=False
                )
        if self.incremental_churn:
            self.aggregator.add_nodes(
                joined, rows=self.overlay.aggregation_rows()
            )
            self._rehome_after_join(joined, now, use_index=True)
        self.counters.joins += len(joined)
        return joined

    def _rehome_after_join(
        self, joined: list[NodeId], now: float, use_index: bool
    ) -> None:
        """Move channels whose anchor became one of ``joined``.

        With ``use_index`` the current manager's cached anchor key is
        compared against each newcomer's — O(joined) per channel, no
        population scan; otherwise every channel's anchor is recomputed
        (the pre-incremental behaviour).
        """
        for url in list(self.managers):
            cid = self._cid(url)
            if use_index:
                best_key = self._anchor_index[url]
                winner: NodeId | None = None
                for node_id in joined:
                    key = self._anchor_key(node_id, cid)
                    if key > best_key:
                        best_key, winner = key, node_id
                if winner is None:
                    continue
            else:
                winner = self.overlay.anchor_of(cid)
                if winner not in joined or winner == self.managers[url]:
                    continue
            self._transfer_channel(url, cid, winner, now)
            self.counters.rehomed_channels += 1

    def _transfer_channel(
        self, url: str, cid: NodeId, new_manager: NodeId, now: float
    ) -> None:
        """Hand ``url`` from its current manager to ``new_manager``.

        Subscription state moves exactly once: the previous manager
        exports and erases its registry entry, the new one imports it.
        The channel record (level, factor estimators) moves with it.
        """
        previous_id = self.managers[url]
        previous = self.nodes[previous_id]
        state = previous.registry.export_state([url])
        channel = previous.managed.pop(url)
        previous.clocks.pop(url, None)
        previous.registry.erase(url)
        node = self.nodes[new_manager]
        prefix = new_manager.shared_prefix_len(cid, self.config.base)
        adopted = node.adopt_channel(
            url,
            max_level=self.overlay.base_level(),
            anchor_prefix=prefix,
            now=now,
        )
        adopted.level = channel.level
        adopted.clamp_level()
        # The estimators travel with the channel; Channel's stats hook
        # rebinds their change notifications to the new manager.
        adopted.stats = channel.stats
        node.registry.import_state(state)
        adopted.stats.subscribers = node.registry.count(url)
        self.managers[url] = new_manager
        self._anchor_index[url] = self._anchor_key(new_manager, cid)
        # Both ends of the transfer now own a different channel set
        # (a pure membership change no stats mutation announces).
        self.aggregator.mark_local_dirty(previous_id)
        self.aggregator.mark_local_dirty(new_manager)
        if self.faults is not None:
            # The digest source moved: members may lag the *new*
            # manager's cache even though no content changed.
            self._repair_dirty_urls.add(url)

    def fail_node(self, node_id: NodeId, now: float = 0.0) -> int:
        """Fail one node; re-home its channels with their subscriptions.

        Models the paper's ownership transfer: "a node that becomes a
        new owner receives the state from other owners of the channel".
        The synchronous container sources the state from the failing
        node's registry, which stands in for the surviving replicas —
        a replica set's copies are identical by construction here, so
        reading the dying node's registry is observationally equivalent
        to fetching the same state from its ``f`` ring neighbours, and
        subscriber counts survive manager crashes intact (tested).
        Returns the number of channels re-homed.
        """
        return self._fail_wave([node_id], now=now)

    def _fail_wave(self, victims: list[NodeId], now: float) -> int:
        """Fail a wave of nodes with one overlay/aggregation repair.

        Subscription state is exported before the wave dies; orphaned
        channels are re-homed to their post-wave anchors, so a channel
        whose successive anchors both die in the same wave transfers
        once, not twice.  Returns the number of channels re-homed.
        """
        for node_id in victims:
            if node_id not in self.nodes:
                raise KeyError(f"unknown node {node_id!r}")
        if not self.incremental_churn:
            return sum(
                self._fail_single_rebuild(node_id, now) for node_id in victims
            )
        orphaned: list[tuple[str, set[str]]] = []
        for node_id in victims:
            dying = self.nodes[node_id]
            state = dying.registry.export_state()
            orphaned.extend(
                (url, state.get(url, set())) for url in dying.managed
            )
            self._crashed_pool.append(
                (node_id, self.overlay.nodes[node_id].address)
            )
        self.overlay.remove_nodes(victims)
        for node_id in victims:
            del self.nodes[node_id]
        self.aggregator.remove_nodes(
            victims, rows=self.overlay.aggregation_rows()
        )
        rehomed = 0
        for url, subscribers in orphaned:
            self._adopt_orphan(url, subscribers, now)
            rehomed += 1
        self.counters.crashes += len(victims)
        self.counters.rehomed_channels += rehomed
        return rehomed

    def _adopt_orphan(self, url: str, subscribers: set[str], now: float) -> None:
        """Re-home one orphaned channel onto its current anchor."""
        cid = self._cid(url)
        anchor = self.overlay.anchor_of(cid)
        prefix = anchor.shared_prefix_len(cid, self.config.base)
        node = self.nodes[anchor]
        channel = node.adopt_channel(
            url,
            max_level=self.overlay.base_level(),
            anchor_prefix=prefix,
            now=now,
        )
        node.registry.import_state({url: set(subscribers)})
        channel.stats.subscribers = node.registry.count(url)
        self.managers[url] = anchor
        self._anchor_index[url] = self._anchor_key(anchor, cid)
        self.aggregator.mark_local_dirty(anchor)
        if self.faults is not None:
            # Re-homed digest source (see _transfer_channel).
            self._repair_dirty_urls.add(url)

    def _fail_single_rebuild(self, node_id: NodeId, now: float) -> int:
        """The pre-incremental failure path (rebuild reference)."""
        dying = self.nodes[node_id]
        state = dying.registry.export_state()
        orphaned_urls = list(dying.managed)
        self._crashed_pool.append(
            (node_id, self.overlay.nodes[node_id].address)
        )
        self.overlay.remove_node(node_id)
        del self.nodes[node_id]
        # Aggregation state is rebuilt over the surviving population
        # (the overlay's self-healing already repaired routing tables).
        self._rebuild_aggregator()
        rehomed = 0
        for url in orphaned_urls:
            self._adopt_orphan(url, state.get(url, set()), now)
            rehomed += 1
        self.counters.crashes += 1
        self.counters.rehomed_channels += rehomed
        return rehomed

    def _rebuild_aggregator(self) -> None:
        """Reconstruct aggregation state from scratch (rebuild path).

        Materializes the routing tables into a plain dict, as the
        pre-incremental system did on every membership event — kept as
        the reference the churn benchmarks and equivalence tests
        compare the incremental splice against.
        """
        self.aggregator = DecentralizedAggregator(
            tables=dict(self.overlay.routing_tables()),
            rows=self.overlay.aggregation_rows(),
            bins=self.config.tradeoff_bins,
            base=self.config.base,
            delta_rounds=self.delta_rounds,
            registry=self.obs.registry,
        )

    def manager_nodes(self) -> set[NodeId]:
        """Nodes currently managing at least one channel."""
        return set(self.managers.values())

    def join_nodes(
        self, count: int, now: float = 0.0, address_prefix: str = "joiner"
    ) -> list[NodeId]:
        """Join ``count`` fresh nodes; returns their ids in join order.

        Addresses are minted from a monotonic counter so repeated waves
        (scenario churn timelines) never collide.  The whole wave is
        spliced into the aggregator with a single repair pass.
        """
        if count < 0:
            raise ValueError("join count cannot be negative")
        addresses: list[str] = []
        for _ in range(count):
            self._join_counter += 1
            addresses.append(f"{address_prefix}-{self._join_counter}")
        if not addresses:
            return []
        with self.obs.tracer.span(
            "churn.join", sim_time=now, category="churn"
        ) as span:
            joined = self._join_wave(addresses, now=now)
            if span is not NULL_SPAN:
                span.set(joined=len(joined), n_nodes=len(self.nodes))
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "join wave: +%d nodes (population %d) at t=%.0f",
                len(joined),
                len(self.nodes),
                now,
            )
        return joined

    def crash_nodes(
        self,
        count: int,
        now: float = 0.0,
        rng: random.Random | None = None,
        target: str = "any",
    ) -> list[NodeId]:
        """Fail ``count`` nodes picked uniformly from a target pool.

        ``target`` selects the pool: ``"any"`` (whole population),
        ``"managers"`` (nodes owning channels — the worst-case churn
        the paper's §3.3 state transfer must absorb) or
        ``"bystanders"`` (nodes owning nothing — pure overlay churn).
        The selection is drawn from ``rng`` when given (deterministic
        under a seeded generator — scenario replays depend on it),
        otherwise from a per-system generator seeded at construction,
        so repeated waves draw independent victims yet the whole run
        stays reproducible.  At least one node always survives.
        Returns the victims in failure order.
        """
        if count < 0:
            raise ValueError("crash count cannot be negative")
        if target not in ("any", "managers", "bystanders"):
            raise ValueError(
                "target must be 'any', 'managers' or 'bystanders'"
            )
        generator = rng if rng is not None else self._churn_rng
        managers = self.manager_nodes()
        pool = list(self.nodes)
        if target == "managers":
            pool = [node_id for node_id in pool if node_id in managers]
        elif target == "bystanders":
            pool = [node_id for node_id in pool if node_id not in managers]
        count = min(count, len(pool), len(self.nodes) - 1)
        victims = generator.sample(pool, count) if count else []
        if victims:
            # One wave ⇒ one overlay repair and one aggregation splice,
            # however many victims (the rebuild path loops internally).
            with self.obs.tracer.span(
                "churn.crash", sim_time=now, category="churn"
            ) as span:
                rehomed = self._fail_wave(victims, now=now)
                if span is not NULL_SPAN:
                    span.set(
                        crashed=len(victims),
                        rehomed=rehomed,
                        n_nodes=len(self.nodes),
                    )
            if _log.isEnabledFor(logging.DEBUG):
                _log.debug(
                    "crash wave: -%d nodes, %d channels re-homed "
                    "(population %d) at t=%.0f",
                    len(victims),
                    rehomed,
                    len(self.nodes),
                    now,
                )
        return victims

    # ------------------------------------------------------------------
    # recovery (rejoin & resync)
    # ------------------------------------------------------------------
    def recover_nodes(self, count: int, now: float = 0.0) -> list[NodeId]:
        """Re-admit up to ``count`` crashed nodes, oldest crash first.

        Each node recovers under its original address — hence its
        original identifier — through the incremental join path, so
        the channels it anchors re-home back to it with subscription
        state transferred from the interim managers
        (:meth:`_rehome_after_join`).  Its poll caches restart empty
        and prime on first poll (bootstrap, not staleness); anything
        its wedge memberships missed converges through the
        anti-entropy repair pass within a bounded number of
        maintenance rounds.  Nodes suspended behind a still-open
        partition are not eligible — :meth:`heal_partition` re-admits
        those.  Returns the recovered ids in rejoin order (fewer than
        ``count`` when the crash pool is smaller).
        """
        if count < 0:
            raise ValueError("recover count cannot be negative")
        entries = self._crashed_pool[:count]
        del self._crashed_pool[: len(entries)]
        return self._recover_wave(entries, now=now)

    def _recover_wave(
        self, entries: list[tuple[NodeId, str]], now: float
    ) -> list[NodeId]:
        """Rejoin a wave of previously crashed nodes (one splice)."""
        if not entries:
            return []
        with self.obs.tracer.span(
            "churn.recover", sim_time=now, category="churn"
        ) as span:
            rejoined = self._join_wave(
                [address for _, address in entries], now=now
            )
            self.counters.recoveries += len(rejoined)
            if span is not NULL_SPAN:
                span.set(recovered=len(rejoined), n_nodes=len(self.nodes))
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "recovery wave: +%d nodes rejoined (population %d) "
                "at t=%.0f",
                len(rejoined),
                len(self.nodes),
                now,
            )
        return rejoined

    def heal_partition(self, name: str, now: float = 0.0) -> list[NodeId]:
        """Close partition ``name`` and restore its suspended managers.

        Managers the failover detector declared dead *because the
        partition silenced them* were not crashes — the nodes kept
        running on the island side.  Healing re-admits them through
        the recovery path, so partition scenarios conserve population.
        Unknown or already-healed names only drain any leftover
        suspensions (heals routed here may race an auto-heal).
        Returns the re-admitted node ids.
        """
        plane = self.faults
        if plane is not None and name in plane.partitions:
            plane.heal(name)
        suspended = self._partition_suspended.pop(name, [])
        return self._recover_wave(suspended, now=now)

    # ------------------------------------------------------------------
    # protocol rounds
    # ------------------------------------------------------------------
    def run_aggregation_phase(self) -> None:
        """Refresh local summaries and run the two aggregation hops.

        With ``delta_rounds`` only the nodes whose channel factors
        changed since the previous phase rebuild their local summary
        (the facade marks them dirty on every factor-moving event), and
        each round recomputes only the radii whose epoch triggers
        fired; the eager mode reloads and recomputes everything.  Both
        produce bit-identical summaries — two rounds per phase because
        summaries ride the maintenance messages and again on their
        responses (§3.3).
        """
        self.aggregator.refresh_locals(
            lambda node_id: self.nodes[node_id].local_factors()
        )
        self.aggregator.run_round()
        self.aggregator.run_round()

    def _transmit_hook(self):
        """The per-hop delivery decision, or None for perfect links."""
        plane = self.faults
        if plane is None or not plane.active:
            return None
        return plane.transmit

    def run_maintenance_round(self, now: float) -> int:
        """One full optimization + maintenance + aggregation round.

        Returns the number of maintenance messages sent.  Aggregation
        runs first on the *previous* round's summaries (one-interval
        staleness, §3.3's piggy-backing), then every manager optimizes
        and steps levels, and the resulting announcements are flooded
        through the wedges.

        On fault runs the round additionally (a) tallies per-manager
        delivery failures and declares managers whose floods died for
        ``faults.manager_failure_rounds`` consecutive rounds dead
        (existing crash-repair path), and (b) runs the anti-entropy
        repair pass piggy-backed on the round, so wedge members that
        missed a diff converge within one maintenance interval.
        """
        tracer = self.obs.tracer
        if self.faults is not None:
            # Link-table clock: refill token buckets and drain bounded
            # queues up to this round's sim time (no-op without one).
            self.faults.observe_time(now)
        with tracer.span(
            "aggregation", sim_time=now, category="phase"
        ) as span:
            self.run_aggregation_phase()
            if span is not NULL_SPAN:
                work = self.aggregator.work
                span.set(
                    summaries_rebuilt=work.summaries_rebuilt,
                    nodes_dirtied=work.nodes_dirtied,
                )
        sent = 0
        n_nodes = len(self.overlay)
        plane = self.faults
        # Delivery stats are collected whenever a plane is installed
        # (cheap: a few dict entries per announcing manager) so the
        # round in which the *first* drop happens already records its
        # own silence evidence — gating collection on the latch would
        # discard that round and delay failover by one.
        track_faults = plane is not None
        flood_stats: dict[NodeId, list[int]] = {}
        # Round-scoped shared-solution cache: managers whose combined
        # instances collide this round solve once (memo_solve only —
        # the eager reference must re-solve per manager).
        solve_cache: dict | None = {} if self.memo_solve else None
        with tracer.span(
            "optimize", sim_time=now, category="phase"
        ) as span:
            solved_before = self.solver_work.problems_solved
            for node_id, node in self.nodes.items():
                if not node.managed:
                    continue
                remote = self.aggregator.states[node_id].best_remote()
                node.run_optimization(
                    remote, n_nodes, solve_cache=solve_cache
                )
                if self.delta_rounds:
                    # Level moves change the factors this node
                    # aggregates; the next phase must rebuild its local
                    # summary.  (The eager reference reloads everyone
                    # wholesale, so the tracking would be dead weight on
                    # the reference path.)
                    levels_before = {
                        url: channel.level
                        for url, channel in node.managed.items()
                    }
                    msgs = node.run_maintenance(now)
                    if any(
                        channel.level != levels_before.get(url)
                        for url, channel in node.managed.items()
                    ):
                        self.aggregator.mark_local_dirty(node_id)
                else:
                    msgs = node.run_maintenance(now)
                for msg in msgs:
                    attempted, reached = self._flood_maintenance(
                        node_id, msg, now
                    )
                    sent += attempted
                    if track_faults:
                        stats = flood_stats.setdefault(node_id, [0, 0])
                        stats[0] += attempted
                        stats[1] += reached
            if span is not NULL_SPAN:
                span.set(
                    maintenance_messages=sent,
                    problems_solved=(
                        self.solver_work.problems_solved - solved_before
                    ),
                )
        self.counters.maintenance_messages += sent
        # Re-read the latch: the very first drop may have happened in
        # this round's floods, and its victims should not wait a full
        # extra round for repair.
        if plane is not None and plane.ever_active:
            with tracer.span(
                "repair", sim_time=now, category="phase"
            ) as span:
                self._detect_unresponsive_managers(flood_stats, now)
                repaired = self._run_repair_pass(now)
                if span is not NULL_SPAN:
                    span.set(
                        repaired=repaired,
                        dirty_urls=len(self._repair_dirty_urls),
                    )
        return sent

    def _flood_maintenance(
        self, manager_id: NodeId, msg: MaintenanceMsg, now: float
    ) -> tuple[int, int]:
        """Flood one announcement; returns (hops sent, hops reached)."""
        cid = channel_id(msg.url)
        plan = wedge_recipients(
            manager_id,
            self.overlay.routing_tables(),
            cid,
            msg.level,
            self.config.base,
        )
        deliveries, attempted, _unreached, _delay_to = deliver_plan(
            plan, self._transmit_hook()
        )
        for recipient, copies in deliveries:
            for _ in range(copies):
                self.nodes[recipient].handle_maintenance(msg, cid, now)
        # Nodes polling at a *deeper* (now abandoned) level must also
        # hear about raises; the wedge at the lower level is a superset
        # of the old one, so the plan above already covers lowers, and
        # raises reach the shrinking wedge because it is a subset.
        return attempted, len(deliveries)

    def _detect_unresponsive_managers(
        self, flood_stats: dict[NodeId, list[int]], now: float
    ) -> None:
        """Declare managers whose floods keep dying dead (fault runs).

        A manager that attempted deliveries this round and reached
        nobody is unresponsive evidence (a partitioned or silently
        dead node looks exactly like this from the cloud's side);
        after ``manager_failure_rounds`` consecutive silent rounds the
        cloud gives up on it and triggers the *existing* crash-repair
        path — §3.3 ownership transfer re-homes its channels with
        subscription state onto the surviving anchors.
        """
        plane = self.faults
        assert plane is not None
        victims: list[NodeId] = []
        for manager_id in self.manager_nodes():
            attempted, reached = flood_stats.get(manager_id, (0, 0))
            if attempted == 0:
                continue  # nothing flooded: no evidence either way
            if reached == 0:
                count = self._manager_silent_rounds.get(manager_id, 0) + 1
                self._manager_silent_rounds[manager_id] = count
                if count >= plane.manager_failure_rounds:
                    victims.append(manager_id)
            else:
                self._manager_silent_rounds.pop(manager_id, None)
        victims = victims[: max(0, len(self.nodes) - 1)]
        if not victims:
            return
        for manager_id in victims:
            self._manager_silent_rounds.pop(manager_id, None)
            self._limited_log.info(
                "failover",
                "manager %s unresponsive for %d rounds, re-homing "
                "its channels (t=%.0f)",
                manager_id.hex()[:8],
                plane.manager_failure_rounds,
                now,
            )
        # A victim silenced by an open partition is suspended, not
        # crashed: the node keeps running on the island side, so the
        # matching heal re-admits it (population conservation).
        island_of: dict[NodeId, str] = {}
        for name, island in plane.partitions.items():
            for manager_id in victims:
                if manager_id in island.members:
                    island_of.setdefault(manager_id, name)
        pool_mark = len(self._crashed_pool)
        self._fail_wave(victims, now=now)
        if island_of:
            kept: list[tuple[NodeId, str]] = []
            for entry in self._crashed_pool[pool_mark:]:
                name = island_of.get(entry[0])
                if name is None:
                    kept.append(entry)
                else:
                    self._partition_suspended.setdefault(
                        name, []
                    ).append(entry)
            self._crashed_pool[pool_mark:] = kept
        plane.counters.manager_failovers += len(victims)

    def _run_repair_pass(self, now: float) -> int:
        """Digest-based anti-entropy repair, piggy-backed on the round.

        Each manager compares its latest accepted content against its
        wedge members' poll caches and re-ships the channel state to
        any member that lags — so a node whose diff was lost (even
        after the retransmit budget) converges one maintenance
        interval after the last loss, preserving the §3.3 one-interval
        staleness bound under message loss.  Repair messages cross the
        same fault plane; one lost tonight is retried next round.
        Returns the number of members repaired.
        """
        plane = self.faults
        if plane is None or not plane.ever_active:
            return 0
        dirty = self._repair_dirty_urls
        if not dirty:
            # Converged and nothing has moved since: every channel's
            # digest is where the last clean pass left it, so the scan
            # would be pure wasted work until new change arrives.
            plane.counters.repair_urls_skipped += len(self.managers)
            return 0
        transmit = plane.transmit
        # One pass over the cloud: who polls the dirty channels
        # (plan-order stable — ``self.nodes`` iteration order, exactly
        # the order the full scan visited members in).
        polling: dict[str, list[tuple[NodeId, object]]] = {}
        for node_id, node in self.nodes.items():
            for url, task in node.scheduler.tasks.items():
                if url in dirty:
                    polling.setdefault(url, []).append((node_id, task))
        repaired = 0
        skipped = 0
        for url, manager_id in self.managers.items():
            if url not in dirty:
                # No content change or manager move since this url's
                # last clean pass ⇒ no member can be behind; the full
                # scan would draw no randomness here either.
                skipped += 1
                continue
            manager = self.nodes[manager_id]
            source = manager.scheduler.tasks.get(url)
            if source is None or not source.content.lines:
                continue  # the manager holds nothing to repair from
            digest_version = source.content.version
            digest_lines = source.content.lines
            lost = 0
            for member_id, task in polling.get(url, ()):
                if member_id == manager_id:
                    continue
                if not task.content.lines and task.content.version == 0:
                    # Freshly recruited, cache never primed: its first
                    # poll primes it silently — that is bootstrap, not
                    # staleness, and needs no repair traffic.
                    continue
                # Behind = the member's cache *content* diverges and
                # the manager's version is not older.  Pure version
                # skew over identical content (a member recruited
                # late) is not staleness and is left alone; a member
                # strictly ahead (it out-polled a lagging manager) is
                # never dragged backwards — the manager's own poll
                # repairs the manager instead.
                behind = (
                    task.content.lines != digest_lines
                    and task.content.version <= digest_version
                )
                if not behind:
                    continue
                if not transmit(manager_id, member_id).delivered:
                    lost += 1
                    continue  # lost repair: next round retries
                task.content.replace(digest_version, digest_lines)
                plane.counters.repair_diffs += 1
                repaired += 1
            if lost == 0:
                # Every lagging member converged (or none was behind):
                # the url is clean until its digest moves again.
                dirty.discard(url)
        plane.counters.repair_urls_skipped += skipped
        if repaired:
            self._limited_log.debug(
                "repair",
                "anti-entropy repaired %d members "
                "(%d channels still dirty, %d clean skipped, t=%.0f)",
                repaired,
                len(dirty),
                skipped,
                now,
            )
        return repaired

    def poll_due(self, now: float) -> list[DetectionEvent]:
        """Execute every poll that has come due across the cloud.

        Diffs produced by detections are flooded to the wedge and the
        manager synchronously (the deployment simulator adds latency).
        Returns the fresh-detection events for metrics.
        """
        fresh: list[DetectionEvent] = []
        plane = self.faults
        if plane is not None:
            plane.observe_time(now)
        faulty = plane is not None and plane.active
        # Load shedding only engages when the per-link table is live
        # *and* some link has queue state (``backpressure`` is pure
        # queue inspection — no randomness, so fault-free byte
        # identity holds trivially).
        links = plane.links if plane is not None else None
        shedding = links is not None and links.active
        polls_before = self.counters.polls
        # Repair bookkeeping runs whenever a plane is installed (even
        # while inactive): a drop in round k lags members behind diffs
        # whose content changes happened in any earlier round, so the
        # dirty set must already know about them.
        track_repair = plane is not None
        with self.obs.tracer.span(
            "poll_batch", sim_time=now, category="phase"
        ) as span:
            for node_id, node in self.nodes.items():
                shed_node = shedding and links.should_shed_poll(node_id)
                for task in node.scheduler.due(now):
                    if shed_node:
                        # Sustained outbound queue backpressure: do not
                        # add poll (and consequent diff-flood) load to
                        # a congested link.  The node serves its cached
                        # snapshot — stale by at most the extra τ — and
                        # re-examines the backlog next interval.
                        plane.counters.polls_shed += 1
                        task.record_shed()
                        continue
                    if faulty and not plane.poll_attempt(node_id):
                        # Request/response lost (or the server side of
                        # a partition): the poll times out after its
                        # retry budget and the task skips to the next
                        # interval — the channel simply stays stale one
                        # τ longer.
                        task.record_failure()
                        continue
                    fetched = self.fetcher.fetch(
                        task.url, now, source=node_id.hex()
                    )
                    self.counters.polls += 1
                    version_before = task.content.version
                    diff_msg = node.execute_poll(task, fetched, now)
                    if (
                        track_repair
                        and task.content.version != version_before
                    ):
                        # The poller's cache advanced (prime or fresh
                        # content): this channel's digest/member
                        # relation may have shifted — repair must look
                        # at it again.
                        self._repair_dirty_urls.add(task.url)
                    if diff_msg is None:
                        continue
                    event = self._disseminate(node_id, diff_msg, now)
                    if event is not None:
                        published = self.fetcher.published_at(
                            diff_msg.url
                        )
                        event = dataclasses.replace(
                            event, published_at=published
                        )
                        fresh.append(event)
            if span is not NULL_SPAN:
                span.set(
                    polls=self.counters.polls - polls_before,
                    detections=len(fresh),
                )
        self.detections.extend(fresh)
        self.counters.detections += len(fresh)
        return fresh

    def _disseminate(
        self, detector_id: NodeId, msg: DiffMsg, now: float
    ) -> DetectionEvent | None:
        """Flood a diff through the wedge; deliver to the manager.

        Every hop rides the fault plane: per-hop retransmits within
        the budget, subtree cut-off on relays that never got the
        message, duplicate deliveries exercising the §3.4 dedup.  A
        diff that never reaches the manager produces no detection
        event this time — the manager catches up through its own poll
        or the anti-entropy repair pass.
        """
        messages_before = self.counters.diff_messages
        with self.obs.tracer.span(
            "dissemination", sim_time=now, category="phase"
        ) as span:
            cid = channel_id(msg.url)
            manager_id = self.managers.get(msg.url)
            level = self.nodes[detector_id].polling_level(msg.url)
            plan: list[tuple[NodeId, NodeId, int]] = []
            if level is not None:
                plan = wedge_recipients(
                    detector_id,
                    self.overlay.routing_tables(),
                    cid,
                    level,
                    self.config.base,
                )
            deliveries, attempted, _unreached, delay_to = deliver_plan(
                plan, self._transmit_hook()
            )
            self.counters.diff_messages += attempted
            plan_children = {child for _parent, child, _depth in plan}
            event: DetectionEvent | None = None
            # Cumulative link delay on the path the diff took to the
            # manager (0.0 without a link table — metrics unchanged).
            path_delay = 0.0
            if manager_id is not None:
                path_delay = delay_to.get(manager_id, 0.0)
            for recipient, copies in deliveries:
                if recipient == detector_id:
                    continue
                result: DetectionEvent | None = None
                for _ in range(copies):
                    fresh = self.nodes[recipient].handle_diff(msg, now)
                    if fresh is not None:
                        result = fresh
                if recipient == manager_id:
                    event = result
            if (
                manager_id is not None
                and manager_id != detector_id
                and manager_id not in plan_children
            ):
                # The detector forwards the diff to the manager directly
                # (subscription owners may sit outside the wedge, §3.4).
                self.counters.diff_messages += 1
                copies = 1
                hook = self._transmit_hook()
                if hook is not None:
                    outcome = hook(detector_id, manager_id)
                    copies = outcome.deliveries
                    path_delay = getattr(outcome, "delay", 0.0)
                for _ in range(copies):
                    fresh = self.nodes[manager_id].handle_diff(msg, now)
                    if fresh is not None:
                        event = fresh
            if manager_id == detector_id:
                event = self.nodes[manager_id].handle_diff(msg, now)
                path_delay = 0.0
            if event is not None:
                # path_delay participates in the detection-delay metric
                # (0.0 without a link table, byte-identical either
                # way); detector/fanout are provenance-only.
                event = dataclasses.replace(
                    event,
                    path_delay=path_delay,
                    detector=detector_id,
                    fanout=len(plan),
                )
            if manager_id is not None:
                self.counters.redundant_diffs = self.nodes[
                    manager_id
                ].redundant_diffs
            if span is not NULL_SPAN:
                span.set(
                    fanout=len(plan),
                    diff_messages=self.counters.diff_messages
                    - messages_before,
                )
        # A fresh detection advances the manager's interval/size
        # estimators; ``record_update`` dirties it structurally.
        return event

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def channel(self, url: str) -> Channel | None:
        """The managed channel record for ``url``, if any."""
        manager_id = self.managers.get(url)
        if manager_id is None:
            return None
        return self.nodes[manager_id].managed.get(url)

    def channel_level(self, url: str) -> int | None:
        """Current polling level of ``url``."""
        channel = self.channel(url)
        return channel.level if channel is not None else None

    def pollers_of(self, url: str) -> list[NodeId]:
        """Nodes currently polling ``url``."""
        return [
            node_id
            for node_id, node in self.nodes.items()
            if node.scheduler.is_polling(url)
        ]

    def total_poll_tasks(self) -> int:
        """Polls issued per polling interval across the cloud."""
        return sum(
            node.scheduler.polls_per_interval() for node in self.nodes.values()
        )

    def next_poll_time(self) -> float | None:
        """Earliest pending poll across the cloud."""
        times = [
            node.scheduler.next_due_time()
            for node in self.nodes.values()
            if node.scheduler.tasks
        ]
        times = [t for t in times if t is not None]
        return min(times) if times else None
