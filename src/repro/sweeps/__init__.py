"""Parallel sweep farm: multi-process scenario orchestration.

The scenario subsystem runs one variant at a time in one process;
this package turns a *grid* of scenario runs — variants × seeds,
possibly across several scenarios — into a farmed execution:
:class:`~repro.sweeps.spec.SweepSpec` enumerates the grid as
:class:`~repro.sweeps.spec.SweepTask` cells,
:func:`~repro.sweeps.farm.run_sweep` fans the cells across
spawn-started worker processes (bounded retries, per-task timeouts,
partial-failure reporting), and :class:`~repro.sweeps.farm.SweepRun`
merges per-variant ``--json`` metrics into a cross-variant comparison
artifact.  The CLI front end is ``repro sweep run <name> [-j N]`` /
``repro sweep list``.

The headline contract, enforced by
``tests/sweeps/test_sweep_equivalence.py``: **serial and parallel
execution produce byte-identical per-variant JSON** — worker count,
scheduling order and completion order are invisible in every
artifact.
"""

from repro.sweeps.farm import (
    SweepRun,
    TaskResult,
    run_sweep,
    run_tasks,
    variant_json,
    write_variant_file,
)
from repro.sweeps.journal import (
    JOURNAL_NAME,
    JournalError,
    JournalState,
    SweepJournal,
    load_journal,
)
from repro.sweeps.registry import (
    UnknownSweepError,
    get_sweep,
    list_sweeps,
    register,
    sweep_names,
)
from repro.sweeps.spec import (
    SweepSelection,
    SweepSpec,
    SweepSpecError,
    SweepTask,
    selections_for,
)
from repro.sweeps.worker import TaskOutcome, run_task

# Importing the package registers the built-in sweeps.
from repro.sweeps import builtin as _builtin  # noqa: E402  (self-registration)

__all__ = [
    "JOURNAL_NAME",
    "JournalError",
    "JournalState",
    "SweepJournal",
    "SweepRun",
    "SweepSelection",
    "SweepSpec",
    "SweepSpecError",
    "SweepTask",
    "TaskOutcome",
    "TaskResult",
    "UnknownSweepError",
    "get_sweep",
    "list_sweeps",
    "load_journal",
    "register",
    "run_sweep",
    "run_task",
    "run_tasks",
    "selections_for",
    "sweep_names",
    "variant_json",
    "write_variant_file",
]

del _builtin
