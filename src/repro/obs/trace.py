"""Phase-level span tracing with sim-time + wall-time clocks.

:class:`Tracer` wraps every protocol phase (churn splice, aggregation
rounds, optimization/solve, dissemination floods, anti-entropy repair,
poll batches) and every scenario timeline event in a span carrying

* the **wall clock** (``perf_counter`` start + duration, µs) — where a
  sweep actually spends its time,
* the **sim clock** (the discrete-event ``now`` the span ran at) — where
  in protocol time it happened,
* an **allocation delta** (``sys.getallocatedblocks``) — what the phase
  cost in live Python objects, and
* free-form counter attributes set by the instrumented code.

Spans are emitted as JSON lines (one object per line, append-friendly,
mergeable across runs) and exported to Chrome-trace format by
:func:`export_chrome_trace` (``repro trace export``), so a Perfetto
flamegraph of a sweep is one command away.

The determinism contract (enforced by
``tests/obs/test_obs_equivalence.py``): tracing never touches RNG or
protocol state, and a **disabled** tracer is allocation-free on the
hot path — ``span()`` returns a module-level no-op singleton, so
instrumented code needs no ``if tracer.enabled`` guards.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "Tracer",
    "NULL_SPAN",
    "export_chrome_trace",
    "read_spans",
]


class _NullSpan:
    """The disabled-tracer span: every operation is a no-op.

    A single module-level instance is returned for every ``span()``
    call on a disabled tracer, so instrumentation left in hot paths
    costs one method call and no allocation.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One live span; records timings and attributes on exit."""

    __slots__ = (
        "_tracer",
        "name",
        "category",
        "sim_time",
        "attrs",
        "_wall_start",
        "_alloc_start",
        "_depth",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        sim_time: float | None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.sim_time = sim_time
        self.attrs: dict = {}

    def set(self, **attrs) -> "Span":
        """Attach counter attributes (rendered into the span record)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self._depth = len(tracer._stack)
        tracer._stack.append(self)
        self._alloc_start = sys.getallocatedblocks()
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        wall_end = time.perf_counter()
        alloc_delta = sys.getallocatedblocks() - self._alloc_start
        tracer = self._tracer
        tracer._stack.pop()
        tracer._record(
            self,
            wall_start=self._wall_start,
            wall_duration=wall_end - self._wall_start,
            alloc_delta=alloc_delta,
        )


class Tracer:
    """Span collector writing JSON-lines, feeding phase histograms.

    ``Tracer()`` (no sink) is **disabled**: ``span()`` hands back
    :data:`NULL_SPAN` and nothing is recorded.  Enable by passing a
    ``sink`` (any text-mode writable), or ``enabled=True`` to buffer
    in memory (``tracer.records``) — the test-suite mode.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is attached,
    every finished span also lands in two labeled histograms —
    ``phase_wall_seconds{phase=<name>}`` and
    ``phase_alloc_blocks{phase=<name>}`` — the per-phase wall-clock
    and allocation profile of the run.
    """

    def __init__(
        self,
        sink: IO[str] | None = None,
        registry: "MetricsRegistry | None" = None,
        enabled: bool | None = None,
    ) -> None:
        self.sink = sink
        self.enabled = bool(sink) if enabled is None else enabled
        self.records: list[dict] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()
        self._wall_hist: "Histogram | None" = None
        self._alloc_hist: "Histogram | None" = None
        if registry is not None:
            self.bind_registry(registry)

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Tracer":
        return cls()

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        """Route per-span wall/alloc observations into ``registry``."""
        self._wall_hist = registry.histogram(
            "phase_wall_seconds",
            "wall-clock duration of traced protocol phases",
            labelnames=("phase",),
        )
        self._alloc_hist = registry.histogram(
            "phase_alloc_blocks",
            "net allocated blocks across traced protocol phases",
            labelnames=("phase",),
            buckets=(0, 10, 100, 1_000, 10_000, 100_000, 1_000_000),
        )

    def span(
        self,
        name: str,
        sim_time: float | None = None,
        category: str = "phase",
    ):
        """A context manager tracing one phase (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, category, sim_time)

    def complete(
        self,
        name: str,
        wall_start: float,
        wall_duration: float,
        sim_time: float | None = None,
        category: str = "phase",
        alloc_delta: int | None = None,
        **attrs,
    ) -> None:
        """Record an externally-measured complete span.

        For work whose timing the caller already holds — e.g. the
        sweep farm, whose tasks run in *worker processes* while the
        parent keeps the clock: ``wall_start`` is a parent-side
        ``perf_counter`` value, ``wall_duration`` seconds.  The
        record is shaped exactly like a context-manager span (and
        feeds the same phase histograms), so ``repro trace export``
        renders both identically.
        """
        if not self.enabled:
            return
        record = {
            "name": name,
            "cat": category,
            "ph": "X",
            "wall_us": round((wall_start - self._epoch) * 1e6, 3),
            "dur_us": round(wall_duration * 1e6, 3),
            "sim": sim_time,
            "alloc": alloc_delta,
            "depth": len(self._stack),
        }
        if attrs:
            record["args"] = attrs
        self._emit(record)
        if self._wall_hist is not None:
            self._wall_hist.labels(phase=name).observe(wall_duration)
        if self._alloc_hist is not None and alloc_delta is not None:
            self._alloc_hist.labels(phase=name).observe(float(alloc_delta))

    def instant(
        self,
        name: str,
        sim_time: float | None = None,
        category: str = "event",
        **attrs,
    ) -> None:
        """A zero-duration marker (scenario events, fault flips)."""
        if not self.enabled:
            return
        record = {
            "name": name,
            "cat": category,
            "ph": "i",
            "wall_us": round(
                (time.perf_counter() - self._epoch) * 1e6, 3
            ),
            "sim": sim_time,
            "depth": len(self._stack),
        }
        if attrs:
            record["args"] = attrs
        self._emit(record)

    # ------------------------------------------------------------------
    def _record(
        self,
        span: Span,
        wall_start: float,
        wall_duration: float,
        alloc_delta: int,
    ) -> None:
        record = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "wall_us": round((wall_start - self._epoch) * 1e6, 3),
            "dur_us": round(wall_duration * 1e6, 3),
            "sim": span.sim_time,
            "alloc": alloc_delta,
            "depth": span._depth,
        }
        if span.attrs:
            record["args"] = span.attrs
        self._emit(record)
        if self._wall_hist is not None:
            self._wall_hist.labels(phase=span.name).observe(wall_duration)
        if self._alloc_hist is not None:
            self._alloc_hist.labels(phase=span.name).observe(
                float(alloc_delta)
            )

    def _emit(self, record: dict) -> None:
        if self.sink is not None:
            self.sink.write(json.dumps(record) + "\n")
        else:
            self.records.append(record)

    def close(self) -> None:
        """Flush the sink (the CLI owns closing the file itself)."""
        if self.sink is not None:
            self.sink.flush()


#: The disabled tracer everything defaults to — instrumented code can
#: keep an unconditional reference and pay one attribute check.
NULL_TRACER = Tracer()


# ----------------------------------------------------------------------
# JSONL <-> Chrome trace format
# ----------------------------------------------------------------------
def read_spans(lines) -> list[dict]:
    """Parse span JSON-lines (an iterable of strings) into records.

    A killed writer (SIGTERM mid-sweep, a crashed run) can leave one
    partially written *final* line; that tail is skipped with a
    warning rather than failing the whole export.  A malformed line
    anywhere *before* the end still raises :class:`ValueError` — an
    interior parse failure means the log is corrupt, not merely
    truncated, and an export should never silently drop real spans.
    """
    from repro.obs.log import get_logger

    records = []
    bad_line: int | None = None
    line_no = 0
    for line in lines:
        line_no += 1
        line = line.strip()
        if not line:
            continue
        if bad_line is not None:
            raise ValueError(
                f"malformed span record at line {bad_line}"
            )
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            bad_line = line_no  # tolerated iff nothing follows it
    if bad_line is not None:
        get_logger(__name__).warning(
            "span log: skipping truncated final line %d", bad_line
        )
    return records


def export_chrome_trace(
    records: list[dict],
    clock: str = "wall",
    process_name: str = "repro",
) -> dict:
    """Render span records as a Chrome-trace (Perfetto-loadable) dict.

    ``clock`` picks the timeline: ``"wall"`` places spans at their
    measured wall-clock offsets (a real flamegraph of where the run
    spent time); ``"sim"`` places them at their simulation timestamps
    (duration = wall duration, so overlapping phases of one sim
    instant still nest) — where in *protocol* time the work happened.

    The output is the JSON object format: ``{"traceEvents": [...]}``
    with complete (``X``) and instant (``i``) events on one
    process/thread track, which Perfetto nests by containment.
    """
    if clock not in ("wall", "sim"):
        raise ValueError(f"unknown clock {clock!r} (use 'wall' or 'sim')")
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for record in records:
        if clock == "sim" and record.get("sim") is not None:
            ts = float(record["sim"]) * 1e6
        else:
            ts = float(record.get("wall_us", 0.0))
        event = {
            "name": record.get("name", "?"),
            "cat": record.get("cat", "phase"),
            "ph": record.get("ph", "X"),
            "ts": ts,
            "pid": 0,
            "tid": 0,
        }
        if event["ph"] == "X":
            event["dur"] = float(record.get("dur_us", 0.0))
        if event["ph"] == "i":
            event["s"] = "t"  # instant scope: thread
        args = dict(record.get("args", ()))
        if record.get("sim") is not None:
            args["sim_time"] = record["sim"]
        if record.get("alloc") is not None:
            args["alloc_blocks"] = record["alloc"]
        if args:
            event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
