"""Subscription registry and ownership state transfer."""

import pytest

from repro.core.subscription import SubscriptionRegistry


@pytest.fixture()
def registry() -> SubscriptionRegistry:
    reg = SubscriptionRegistry()
    reg.subscribe("http://a/", "alice")
    reg.subscribe("http://a/", "bob")
    reg.subscribe("http://b/", "alice")
    return reg


class TestBasics:
    def test_subscribe_idempotent(self, registry):
        assert not registry.subscribe("http://a/", "alice")
        assert registry.count("http://a/") == 2

    def test_unsubscribe(self, registry):
        assert registry.unsubscribe("http://a/", "alice")
        assert not registry.unsubscribe("http://a/", "alice")
        assert registry.count("http://a/") == 1

    def test_unsubscribe_unknown_channel(self, registry):
        assert not registry.unsubscribe("http://zzz/", "alice")

    def test_empty_channel_removed(self, registry):
        registry.unsubscribe("http://b/", "alice")
        assert "http://b/" not in registry.channels()

    def test_empty_client_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.subscribe("http://a/", "")

    def test_counts(self, registry):
        assert registry.total_subscriptions() == 3
        assert set(registry.channels()) == {"http://a/", "http://b/"}
        assert registry.subscribers("http://a/") == frozenset(
            {"alice", "bob"}
        )


class TestStateTransfer:
    def test_export_import_roundtrip(self, registry):
        state = registry.export_state()
        replica = SubscriptionRegistry()
        replica.import_state(state)
        assert replica.subscribers("http://a/") == registry.subscribers(
            "http://a/"
        )
        assert replica.total_subscriptions() == 3

    def test_export_subset(self, registry):
        state = registry.export_state(["http://a/"])
        assert set(state) == {"http://a/"}

    def test_import_merges(self, registry):
        replica = SubscriptionRegistry()
        replica.subscribe("http://a/", "carol")
        replica.import_state(registry.export_state())
        assert replica.subscribers("http://a/") == frozenset(
            {"alice", "bob", "carol"}
        )

    def test_export_is_a_copy(self, registry):
        """Mutating exported state must not affect the registry —
        otherwise a failed transfer could corrupt the source owner."""
        state = registry.export_state()
        state["http://a/"].add("mallory")
        assert "mallory" not in registry.subscribers("http://a/")

    def test_erase_on_ownership_loss(self, registry):
        registry.erase("http://a/")
        assert registry.count("http://a/") == 0
        assert registry.count("http://b/") == 1
        registry.erase_all()
        assert registry.total_subscriptions() == 0
