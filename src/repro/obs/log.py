"""Stdlib ``logging`` wiring for the whole package.

The package logs under the ``"repro"`` namespace; :func:`get_logger`
hands out children (``repro.core.system``, ``repro.scenarios`` …) and
:func:`setup` attaches one stderr handler at a verbosity the CLI's
``-v``/``-q`` flags pick.  Library use stays silent by default — the
root ``repro`` logger gets a ``NullHandler`` on import, the stdlib
convention for packages.

Per-node debug logs at 65k-node scale would drown a run even at
``DEBUG``, so instrumented sites gate on :func:`should_log`: node 0,
powers of two and multiples of ``every`` pass, everything else is
sampled out — the classic simulator ``should_log`` pattern.  For
event-shaped noise (one line per dropped message, say) use
:class:`RateLimited`, which passes the first ``budget`` records per
key and then counts suppressions.
"""

from __future__ import annotations

import logging
import sys

__all__ = [
    "PACKAGE_LOGGER",
    "get_logger",
    "setup",
    "should_log",
    "RateLimited",
]

PACKAGE_LOGGER = "repro"

logging.getLogger(PACKAGE_LOGGER).addHandler(logging.NullHandler())

#: CLI verbosity (``-q``…``-vv``) → logging level.
_LEVELS = {
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}


def get_logger(name: str | None = None) -> logging.Logger:
    """The package logger, or a namespaced child of it."""
    if not name or name == PACKAGE_LOGGER:
        return logging.getLogger(PACKAGE_LOGGER)
    if name.startswith(f"{PACKAGE_LOGGER}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{PACKAGE_LOGGER}.{name}")


def setup(
    verbosity: int = 0,
    stream=None,
    fmt: str = "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
) -> logging.Logger:
    """Attach one stream handler at the ``-v`` count's level.

    ``verbosity``: -1 = quiet (errors only), 0 = warnings, 1 = info,
    2+ = debug.  Idempotent: a previous setup's handler is replaced,
    not stacked, so repeated CLI invocations in one process (tests)
    never double-log.
    """
    verbosity = max(-1, min(2, verbosity))
    logger = logging.getLogger(PACKAGE_LOGGER)
    logger.setLevel(_LEVELS[verbosity])
    for handler in list(logger.handlers):
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    return logger


def should_log(index: int, every: int = 1024) -> bool:
    """Sampled per-node logging: 0, powers of two, every ``every``-th.

    Keeps 65k-node debug runs readable: ~16 powers of two plus one
    node per ``every`` stride, instead of one line per node.
    """
    if index <= 0:
        return index == 0
    return (index & (index - 1)) == 0 or index % every == 0


class RateLimited:
    """Pass the first ``budget`` log records per key, count the rest.

    >>> limited = RateLimited(logger, budget=3)
    >>> limited.debug("drop", "dropped %s -> %s", a, b)

    ``suppressed(key)`` reports how many records the key swallowed —
    emit it once at the end of a run if the number matters.
    """

    def __init__(self, logger: logging.Logger, budget: int = 5) -> None:
        if budget < 0:
            raise ValueError("budget cannot be negative")
        self.logger = logger
        self.budget = budget
        self._seen: dict[str, int] = {}

    def _admit(self, key: str) -> bool:
        seen = self._seen.get(key, 0) + 1
        self._seen[key] = seen
        return seen <= self.budget

    def log(self, level: int, key: str, msg: str, *args) -> None:
        if not self.logger.isEnabledFor(level):
            return
        if self._admit(key):
            self.logger.log(level, msg, *args)

    def debug(self, key: str, msg: str, *args) -> None:
        self.log(logging.DEBUG, key, msg, *args)

    def info(self, key: str, msg: str, *args) -> None:
        self.log(logging.INFO, key, msg, *args)

    def suppressed(self, key: str) -> int:
        """Records swallowed for ``key`` after its budget ran out."""
        return max(0, self._seen.get(key, 0) - self.budget)
