"""SweepSpec enumeration order, validation, and the sweep registry."""

import pytest

from repro.sweeps import (
    SweepSelection,
    SweepSpec,
    SweepSpecError,
    SweepTask,
    UnknownSweepError,
    get_sweep,
    list_sweeps,
    selections_for,
    sweep_names,
)
from repro.sweeps.builtin import BUILTIN_NAMES


class TestSweepTask:
    def test_key_and_label(self):
        assert SweepTask("flash-crowd", None, 3).key == (
            "flash-crowd[base]@seed3"
        )
        assert SweepTask("scheme-fault-sweep", "fair", 0).label == "fair"

    def test_validate_rejects_unknowns(self):
        with pytest.raises(SweepSpecError):
            SweepTask("no-such-scenario").validate()
        with pytest.raises(SweepSpecError):
            SweepTask("flash-crowd", "no-such-variant").validate()
        with pytest.raises(SweepSpecError):
            SweepTask("flash-crowd", None, -1).validate()


class TestSweepSpec:
    def test_tasks_enumerate_selection_major_then_variant_then_seed(self):
        spec = SweepSpec(
            name="grid",
            selections=(
                SweepSelection("scheme-fault-sweep", ("fast", "lite")),
                SweepSelection("flash-crowd"),
            ),
            seeds=(0, 7),
        )
        spec.validate()
        assert spec.tasks() == (
            SweepTask("scheme-fault-sweep", "fast", 0),
            SweepTask("scheme-fault-sweep", "fast", 7),
            SweepTask("scheme-fault-sweep", "lite", 0),
            SweepTask("scheme-fault-sweep", "lite", 7),
            SweepTask("flash-crowd", None, 0),
            SweepTask("flash-crowd", None, 7),
        )
        assert spec.scenario_names() == [
            "scheme-fault-sweep",
            "flash-crowd",
        ]

    def test_all_variants_when_unrestricted(self):
        (selection,) = selections_for(["churn-scale-sweep"])
        assert selection.resolve_labels() == (
            "n512",
            "n1024",
            "n2048",
            "n4096",
        )

    @pytest.mark.parametrize(
        "spec",
        [
            SweepSpec(name=""),
            SweepSpec(name="empty"),
            SweepSpec(
                name="no-seeds",
                selections=selections_for(["flash-crowd"]),
                seeds=(),
            ),
            SweepSpec(
                name="dup-seeds",
                selections=selections_for(["flash-crowd"]),
                seeds=(1, 1),
            ),
            SweepSpec(
                name="bad-timeout",
                selections=selections_for(["flash-crowd"]),
                timeout=0.0,
            ),
            SweepSpec(
                name="bad-variant",
                selections=(SweepSelection("flash-crowd", ("nope",)),),
            ),
        ],
        ids=[
            "unnamed",
            "no-selections",
            "no-seeds",
            "duplicate-seeds",
            "zero-timeout",
            "unknown-variant",
        ],
    )
    def test_validate_rejects(self, spec):
        with pytest.raises(SweepSpecError):
            spec.validate()


class TestRegistry:
    def test_builtins_registered_and_valid(self):
        assert set(BUILTIN_NAMES) <= set(sweep_names())
        for spec in list_sweeps():
            spec.validate()
            assert spec.tasks()

    def test_unknown_sweep_is_loud(self):
        with pytest.raises(UnknownSweepError):
            get_sweep("no-such-sweep")

    def test_seed_grid_replicates_seeds(self):
        spec = get_sweep("seed-grid")
        assert [task.seed for task in spec.tasks()] == [0, 1, 2]
