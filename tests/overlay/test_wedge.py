"""Wedge membership, expected sizes, baselevel, orphan detection."""

import math

import pytest

from repro.overlay.hashing import channel_id
from repro.overlay.wedge import (
    base_level,
    expected_wedge_size,
    is_orphan,
    wedge_members,
)


class TestWedgeMembers:
    def test_level_zero_is_everyone(self, small_overlay):
        cid = channel_id("http://w.example/feed")
        members = wedge_members(
            cid, 0, small_overlay.node_ids(), small_overlay.base
        )
        assert len(members) == len(small_overlay)

    def test_wedges_nest(self, small_overlay):
        cid = channel_id("http://w.example/feed")
        nodes = small_overlay.node_ids()
        previous = set(nodes)
        for level in range(1, small_overlay.base_level() + 1):
            current = set(
                wedge_members(cid, level, nodes, small_overlay.base)
            )
            assert current <= previous
            previous = current

    def test_members_share_prefix(self, small_overlay):
        cid = channel_id("http://w2.example/feed")
        for member in wedge_members(
            cid, 2, small_overlay.node_ids(), small_overlay.base
        ):
            assert member.shared_prefix_len(cid, small_overlay.base) >= 2

    def test_negative_level_rejected(self, small_overlay):
        with pytest.raises(ValueError):
            wedge_members(
                channel_id("http://x/"), -1, small_overlay.node_ids(), 4
            )


class TestSizes:
    def test_expected_size_formula(self):
        assert expected_wedge_size(1024, 0, 16) == 1024
        assert expected_wedge_size(1024, 1, 16) == 64
        assert expected_wedge_size(1024, 2, 16) == 4

    def test_expected_size_validation(self):
        with pytest.raises(ValueError):
            expected_wedge_size(0, 1, 16)
        with pytest.raises(ValueError):
            expected_wedge_size(10, -1, 16)

    def test_base_level(self):
        assert base_level(1024, 16) == math.ceil(math.log(1024, 16))
        assert base_level(1, 16) == 0
        assert base_level(17, 16) == 2
        assert base_level(16, 16) == 1

    def test_base_level_validation(self):
        with pytest.raises(ValueError):
            base_level(0, 16)

    def test_empirical_sizes_near_expectation(self, hexa_overlay):
        """Measured level-1 wedges should scatter around N/16."""
        sizes = []
        for index in range(50):
            cid = channel_id(f"http://size{index}.example/")
            sizes.append(len(hexa_overlay.wedge(cid, 1)))
        mean = sum(sizes) / len(sizes)
        expected = len(hexa_overlay) / 16
        assert expected * 0.5 < mean < expected * 1.7


class TestOrphans:
    def test_orphan_consistency_with_anchor(self, small_overlay):
        """is_orphan agrees with the anchor's shared-prefix length."""
        k = small_overlay.base_level()
        for index in range(40):
            cid = channel_id(f"http://orphan{index}.example/")
            anchor = small_overlay.anchor_of(cid)
            prefix = anchor.shared_prefix_len(cid, small_overlay.base)
            expected = prefix < k - 1
            assert (
                is_orphan(
                    cid, small_overlay.node_ids(), small_overlay.base,
                    len(small_overlay),
                )
                == expected
            )
