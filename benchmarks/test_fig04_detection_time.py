"""Figure 4 — Average update detection time vs time.

Paper: "Corona-Lite provides 15-fold improvement in update detection
time compared to legacy RSS clients for the same network load";
Corona-Fast "closely meets the desired target of 30 seconds".
"""

from benchmarks.conftest import write_artifact
from repro.analysis.stats import improvement_factor, steady_state_mean
from repro.analysis.tables import format_series


def test_fig04_detection_time(benchmark, runner, scale):
    fast = benchmark.pedantic(
        lambda: runner.run_fresh("fast"), rounds=1, iterations=1
    )
    lite = runner.run("lite")
    legacy = runner.run("legacy")

    artifact = format_series(
        lite.bucket_times,
        {
            "Legacy RSS": legacy.analytic_series,
            "Corona Lite": lite.analytic_series,
            "Corona Fast": fast.analytic_series,
        },
        unit="s",
    )
    write_artifact(f"fig04_detection_time_{scale.name}.txt", artifact)

    # Shape 1: legacy sits at tau/2 = 900 s throughout.
    assert abs(legacy.analytic_series[0] - 900.0) < 1.0

    # Shape 2: Lite ends an order of magnitude below legacy.
    lite_steady = steady_state_mean(lite.analytic_series, 0.34)
    assert improvement_factor(900.0, lite_steady) > 8.0

    # Shape 3: Fast converges near its 30 s target (±40% leaves room
    # for level granularity at reduced scale).
    fast_steady = steady_state_mean(fast.analytic_series, 0.34)
    assert fast_steady < 30.0 * 1.4

    # Shape 4: Fast is faster than Lite (that is what it pays load for).
    assert fast_steady < lite_steady
