"""Cooperative polling schedules: stagger, periodicity, membership."""

import random

from repro.core.polling import PollScheduler


def scheduler(seed=1, interval=600.0) -> PollScheduler:
    return PollScheduler(interval=interval, rng=random.Random(seed))


class TestStagger:
    def test_first_poll_within_one_interval(self):
        sched = scheduler()
        task = sched.start("http://a/", level=1, now=100.0)
        assert 100.0 <= task.next_poll <= 700.0

    def test_stagger_spreads_uniformly(self):
        """Many nodes starting the same channel spread their polls over
        the interval (§3.3) — check rough uniformity of phases."""
        phases = []
        for seed in range(200):
            task = scheduler(seed=seed).start("http://a/", 1, now=0.0)
            phases.append(task.next_poll / 600.0)
        mean = sum(phases) / len(phases)
        assert 0.4 < mean < 0.6
        assert min(phases) < 0.1
        assert max(phases) > 0.9

    def test_restart_preserves_phase(self):
        """Re-announcing a level must not reshuffle the wedge's
        established stagger."""
        sched = scheduler()
        task = sched.start("http://a/", 1, now=0.0)
        first_due = task.next_poll
        sched.start("http://a/", 2, now=50.0)
        assert sched.tasks["http://a/"].next_poll == first_due
        assert sched.tasks["http://a/"].level == 2


class TestPeriodicity:
    def test_advance_steps_one_interval(self):
        sched = scheduler()
        task = sched.start("http://a/", 1, now=0.0)
        due = task.next_poll
        task.advance()
        assert task.next_poll == due + 600.0

    def test_due_filters_by_time(self):
        sched = scheduler()
        sched.start("http://a/", 1, now=0.0)
        sched.start("http://b/", 1, now=0.0)
        all_due = sched.due(700.0)
        assert len(all_due) == 2
        none_due = sched.due(-1.0)
        assert none_due == []

    def test_next_due_time(self):
        sched = scheduler()
        assert sched.next_due_time() is None
        sched.start("http://a/", 1, now=0.0)
        sched.start("http://b/", 1, now=0.0)
        assert sched.next_due_time() == min(
            task.next_poll for task in sched.tasks.values()
        )


class TestMembership:
    def test_stop(self):
        sched = scheduler()
        sched.start("http://a/", 1, now=0.0)
        assert sched.stop("http://a/")
        assert not sched.stop("http://a/")
        assert not sched.is_polling("http://a/")

    def test_polls_per_interval(self):
        sched = scheduler()
        for index in range(5):
            sched.start(f"http://{index}/", 1, now=0.0)
        assert sched.polls_per_interval() == 5
