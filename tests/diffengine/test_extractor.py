"""Core-content isolation: volatile elements must not look like updates."""

from repro.diffengine.extractor import CoreContentExtractor, extract_core_lines


BASE_DOC = """<rss><channel><title>News</title>
<lastBuildDate>Fri, 13 Jun 2026 10:00:00 GMT</lastBuildDate>
<ttl>60</ttl>
<item><title>Story A</title><description>body text</description></item>
<div class="ad-banner">BUY NOW</div>
<script>var t = Date.now();</script>
<p>12:45:10 PM</p>
<p>Views: 1,234</p>
<p>Real content here</p>
</channel></rss>"""


class TestVolatileInvariance:
    def test_timestamp_churn_invisible(self):
        changed = BASE_DOC.replace("10:00:00", "11:23:45")
        assert extract_core_lines(BASE_DOC) == extract_core_lines(changed)

    def test_counter_churn_invisible(self):
        changed = BASE_DOC.replace("1,234", "999,999")
        assert extract_core_lines(BASE_DOC) == extract_core_lines(changed)

    def test_script_churn_invisible(self):
        changed = BASE_DOC.replace("Date.now()", "12345")
        assert extract_core_lines(BASE_DOC) == extract_core_lines(changed)

    def test_ad_rotation_invisible(self):
        changed = BASE_DOC.replace("BUY NOW", "50% OFF TODAY")
        assert extract_core_lines(BASE_DOC) == extract_core_lines(changed)

    def test_ttl_change_invisible(self):
        changed = BASE_DOC.replace("<ttl>60</ttl>", "<ttl>5</ttl>")
        assert extract_core_lines(BASE_DOC) == extract_core_lines(changed)


class TestRealChanges:
    def test_new_story_visible(self):
        changed = BASE_DOC.replace("Story A", "Story B")
        assert extract_core_lines(BASE_DOC) != extract_core_lines(changed)

    def test_body_edit_visible(self):
        changed = BASE_DOC.replace("body text", "rewritten body")
        assert extract_core_lines(BASE_DOC) != extract_core_lines(changed)

    def test_real_text_retained(self):
        assert "Real content here" in extract_core_lines(BASE_DOC)


class TestConfiguration:
    def test_pubdate_kept_inside_items_dropped_at_channel_level(self):
        doc = (
            "<rss><channel><pubDate>Fri, 13 Jun 2026</pubDate>"
            "<item><pubDate>Thu, 12 Jun 2026</pubDate></item>"
            "</channel></rss>"
        )
        lines = extract_core_lines(doc)
        # Channel-level pubDate dropped entirely; item-level pubDate
        # element survives (its timestamp text is filtered separately).
        assert "<pubdate>" in lines
        assert lines.count("<pubdate>") == 1

    def test_extra_noise_elements(self):
        extractor = CoreContentExtractor(
            extra_noise_elements=frozenset({"aside"})
        )
        doc = "<div><aside>sidebar junk</aside><p>real</p></div>"
        lines = extractor.core_lines(doc)
        assert "sidebar junk" not in lines
        assert "real" in lines

    def test_timestamp_filter_can_be_disabled(self):
        extractor = CoreContentExtractor(strip_timestamp_text=False)
        lines = extractor.core_lines("<p>12:45:10 PM</p>")
        assert "12:45:10 PM" in lines

    def test_attribute_normalization_sorts(self):
        a = extract_core_lines('<a b="2" a="1">x</a>')
        b = extract_core_lines('<a a="1" b="2">x</a>')
        assert a == b

    def test_volatile_attrs_dropped(self):
        a = extract_core_lines('<p style="color:red">x</p>')
        b = extract_core_lines('<p style="color:blue">x</p>')
        assert a == b

    def test_id_with_ad_substring_not_filtered(self):
        """'radar' contains 'ad' but is not an advertisement."""
        lines = extract_core_lines('<div id="radar">weather</div>')
        assert "weather" in lines

    def test_explicit_ad_ids_filtered(self):
        for marker in ("ad-slot", "ads", "banner_top", "sponsor-box"):
            lines = extract_core_lines(
                f'<div id="{marker}">junk</div><p>keep</p>'
            )
            assert "junk" not in lines, marker
            assert "keep" in lines
