"""Tradeoff-function abstraction: validation and evaluation."""

import pytest

from repro.honeycomb.problem import ChannelTradeoff, TradeoffProblem


def simple_channel(key="c", weight=1):
    return ChannelTradeoff(
        key=key,
        levels=(0, 1, 2),
        f=(1.0, 4.0, 16.0),
        g=(100.0, 25.0, 6.0),
        weight=weight,
    )


class TestChannelTradeoff:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            ChannelTradeoff(key="x", levels=(0, 1), f=(1.0,), g=(2.0, 3.0))

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            ChannelTradeoff(key="x", levels=(), f=(), g=())

    def test_levels_must_ascend(self):
        with pytest.raises(ValueError):
            ChannelTradeoff(
                key="x", levels=(1, 0), f=(1.0, 2.0), g=(2.0, 1.0)
            )

    def test_weight_positive(self):
        with pytest.raises(ValueError):
            simple_channel(weight=0)

    def test_from_functions_tabulates(self):
        channel = ChannelTradeoff.from_functions(
            key="x",
            levels=[0, 1, 2],
            f_of_level=lambda level: 2.0**level,
            g_of_level=lambda level: 10.0 / (level + 1),
        )
        assert channel.f == (1.0, 2.0, 4.0)
        assert channel.g == (10.0, 5.0, 10.0 / 3)

    def test_monotonic_detection(self):
        assert simple_channel().is_monotonic()
        zigzag = ChannelTradeoff(
            key="z", levels=(0, 1, 2), f=(1.0, 5.0, 2.0), g=(3.0, 2.0, 1.0)
        )
        assert not zigzag.is_monotonic()


class TestTradeoffProblem:
    def test_total_weight(self):
        problem = TradeoffProblem()
        problem.add(simple_channel("a", weight=3))
        problem.add(simple_channel("b"))
        assert problem.total_weight() == 4

    def test_validate_raises_on_nonmonotonic(self):
        problem = TradeoffProblem()
        problem.add(
            ChannelTradeoff(
                key="bad",
                levels=(0, 1, 2),
                f=(1.0, 5.0, 2.0),
                g=(3.0, 2.0, 1.0),
            )
        )
        with pytest.raises(ValueError):
            problem.validate()

    def test_objective_and_cost_evaluation(self):
        problem = TradeoffProblem(
            channels=[simple_channel("a"), simple_channel("b", weight=2)],
            target=100.0,
        )
        assignment = {"a": 0, "b": 2}
        assert problem.objective(assignment) == 1.0 + 2 * 16.0
        assert problem.cost(assignment) == 100.0 + 2 * 6.0
