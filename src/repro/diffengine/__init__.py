"""The feed-specific difference engine (paper §3.4).

Corona must decide whether a freshly polled copy of a channel carries
*germane* new information.  Raw byte comparison is useless on the Web:
pages embed clocks, hit counters, rotating advertisements and session
tokens that change on every fetch.  The difference engine therefore

1. tokenizes the HTML/XML tolerantly (:mod:`repro.diffengine.tokenizer`),
2. isolates the *core content*, dropping volatile elements such as
   timestamps, counters and ads (:mod:`repro.diffengine.extractor`),
3. diffs the old and new core content line-wise with a Myers O(ND)
   algorithm, producing POSIX-``diff``-style hunks
   (:mod:`repro.diffengine.differ`), and
4. delta-encodes updates for dissemination and applies/composes them
   at receivers (:mod:`repro.diffengine.delta`).

The Cornell measurement study the paper cites found the average
micronews update is 17 lines of XML and 6.8 % of the content — diffs,
not full contents, are what Corona ships between nodes.
"""

from repro.diffengine.delta import apply_diff, diff_size_bytes
from repro.diffengine.differ import Diff, Hunk, diff_lines
from repro.diffengine.extractor import CoreContentExtractor, extract_core_lines
from repro.diffengine.tokenizer import Token, TokenKind, tokenize

__all__ = [
    "CoreContentExtractor",
    "Diff",
    "Hunk",
    "Token",
    "TokenKind",
    "apply_diff",
    "diff_lines",
    "diff_size_bytes",
    "extract_core_lines",
    "tokenize",
]
