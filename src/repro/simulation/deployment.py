"""The message-level simulator behind the §5.2 PlanetLab experiments.

The paper deploys Corona on 80 PlanetLab nodes, issues 30 000
subscriptions for 3 000 real RSS feeds uniformly over the first hour,
and measures detection time (Figure 9) and total polling load
(Figure 10) over six hours with τ = maintenance = 30 minutes.

This simulator runs the *actual protocol code* — the same
:class:`~repro.core.system.CoronaSystem` the examples drive — under a
discrete-event clock: every poll is a simulated HTTP fetch against the
synthetic feed farm (full difference-engine path), every subscription
arrives as a routed event, maintenance rounds fire on schedule, and
wide-area latencies delay diff dissemination.  What PlanetLab provided
— geographic distribution, real web servers — is replaced by the
latency model and the web-server farm; what the experiment *measures*
is protocol behaviour, which runs unmodified.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.config import CoronaConfig
from repro.core.system import CoronaSystem
from repro.faults import FaultPlane
from repro.obs import Observability
from repro.simulation.engine import EventEngine
from repro.simulation.latency import LatencyModel
from repro.simulation.metrics import TimeSeries
from repro.simulation.webserver import WebServerFarm
from repro.workload.trace import SubscriptionTrace


@dataclass
class DeploymentResult:
    """Figures 9 and 10's data, plus bookkeeping for the tests."""

    bucket_times: np.ndarray
    corona_polls_per_min: np.ndarray  # Figure 10, Corona line
    legacy_polls_per_min: float  # Figure 10, legacy line (flat)
    detection_times: np.ndarray  # Figure 9, per-bucket mean (seconds)
    mean_detection_time: float  # the paper's 64 s headline
    legacy_detection_time: float  # τ/2 = 900 s
    detections: int
    total_polls: int
    total_subscriptions: int
    redundant_diffs: int
    final_poll_tasks: int
    # Fault-plane accounting (all zero on fault-free runs).
    messages_dropped: int = 0
    retransmissions: int = 0
    repair_diffs: int = 0
    failed_polls: int = 0
    manager_failovers: int = 0


class DeploymentSimulator:
    """Event-driven run of the full protocol stack (see module doc)."""

    def __init__(
        self,
        trace: SubscriptionTrace,
        config: CoronaConfig,
        n_nodes: int = 80,
        seed: int = 0,
        horizon: float = 6 * 3600.0,
        bucket_width: float = 600.0,
        poll_tick: float = 30.0,
        latency: LatencyModel | None = None,
        injections: Iterable[
            tuple[float, Callable[[CoronaSystem, float], None]]
        ] = (),
        faults: FaultPlane | None = None,
        obs: Observability | None = None,
    ) -> None:
        if not trace.events:
            raise ValueError(
                "deployment needs a trace with timed subscription events "
                "(generate_trace(..., subscription_window=...))"
            )
        self.trace = trace
        self.config = config
        self.horizon = horizon
        self.bucket_width = bucket_width
        self.poll_tick = poll_tick
        self.engine = EventEngine()
        self.latency = latency if latency is not None else LatencyModel(seed=seed)
        self.injections = list(injections)
        self.farm = WebServerFarm(seed=seed + 1)
        for index, url in enumerate(trace.urls):
            self.farm.host(
                url,
                update_interval=float(trace.update_intervals[index]),
                target_bytes=int(trace.content_sizes[index]),
            )
        #: Message-delivery fault model; every dissemination hop,
        #: maintenance flood and poll of the inner system crosses it.
        #: Timed partition/loss changes arrive through ``injections``
        #: (the callbacks close over ``simulator.faults``).
        self.faults = faults
        self.obs = obs if obs is not None else Observability.off()
        self.system = CoronaSystem(
            n_nodes=n_nodes, config=config, fetcher=self.farm, seed=seed,
            faults=faults, obs=self.obs,
        )
        self.poll_series = TimeSeries(bucket_width)
        self.detect_series = TimeSeries(bucket_width)
        self._detections = 0

    # ------------------------------------------------------------------
    def run(self) -> DeploymentResult:
        """Execute the full horizon and collate the figures' series."""
        engine = self.engine
        trace = self.trace

        for when, client, channel_index, subscribe in trace.events:
            url = trace.urls[channel_index]
            if subscribe:
                engine.schedule(
                    when,
                    lambda now, u=url, c=client: self.system.subscribe(
                        u, c, now
                    ),
                )
            else:
                engine.schedule(
                    when,
                    lambda now, u=url, c=client: self.system.unsubscribe(u, c),
                )

        # Fault/behaviour injections run as first-class timed events
        # against the live system (churn, degradation, ...).
        for when, inject in self.injections:
            engine.schedule(
                when, lambda now, fn=inject: fn(self.system, now)
            )

        maintenance = self.config.maintenance_interval

        def run_maintenance(now: float) -> None:
            self.system.run_maintenance_round(now)

        engine.schedule_every(
            maintenance * 0.5, maintenance, run_maintenance,
            until=self.horizon,
        )

        def poll_round(now: float) -> None:
            self.farm.advance_to(now)
            polls_before = self.system.counters.polls
            events = self.system.poll_due(now)
            polls_done = self.system.counters.polls - polls_before
            if polls_done:
                self.poll_series.add(now, float(polls_done))
            for event in events:
                if event.published_at is None:
                    continue
                delay = max(0.0, event.detected_at - event.published_at)
                # Dissemination to subscribers adds the wedge-flood
                # latency; the paper measures end-to-end freshness.
                delay += self.latency.sample()
                if self.faults is not None:
                    # Reordering windows delay end-to-end delivery
                    # (0.0 — and no randomness — when jitter is off).
                    delay += self.faults.detection_jitter()
                self.detect_series.add(now, delay)
                self._detections += 1

        engine.schedule_every(
            self.poll_tick, self.poll_tick, poll_round, until=self.horizon
        )
        engine.run_until(self.horizon)
        return self._collate()

    # ------------------------------------------------------------------
    def _collate(self) -> DeploymentResult:
        tau = self.config.polling_interval
        total_subs = self.trace.total_subscriptions
        detection = self.detect_series.means()
        mean_detection = (
            float(np.nanmean(detection)) if len(detection) else float("nan")
        )
        redundant = sum(
            node.redundant_diffs for node in self.system.nodes.values()
        )
        fault_counts = (
            self.faults.counters
            if self.faults is not None
            else None
        )
        return DeploymentResult(
            bucket_times=self.poll_series.times(),
            corona_polls_per_min=self.poll_series.sums()
            / (self.bucket_width / 60.0),
            legacy_polls_per_min=total_subs / tau * 60.0,
            detection_times=detection,
            mean_detection_time=mean_detection,
            legacy_detection_time=tau / 2.0,
            detections=self._detections,
            total_polls=self.system.counters.polls,
            total_subscriptions=total_subs,
            redundant_diffs=redundant,
            final_poll_tasks=self.system.total_poll_tasks(),
            messages_dropped=(
                fault_counts.messages_dropped if fault_counts else 0
            ),
            retransmissions=(
                fault_counts.retransmissions if fault_counts else 0
            ),
            repair_diffs=fault_counts.repair_diffs if fault_counts else 0,
            failed_polls=fault_counts.failed_polls if fault_counts else 0,
            manager_failovers=(
                fault_counts.manager_failovers if fault_counts else 0
            ),
        )
