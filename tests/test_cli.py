"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioMetrics, ScenarioRunner
from repro.sweeps import SweepTask, run_tasks, variant_json
from repro.sweeps.builtin import BUILTIN_NAMES


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scheme == "lite"
        assert args.channels == 2000

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheme", "warp"])


class TestCommands:
    def test_simulate_runs(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme", "fast",
                "--channels", "150",
                "--subscriptions", "4000",
                "--nodes", "32",
                "--hours", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheme=fast" in out
        assert "weighted delay" in out

    def test_table2_runs(self, capsys):
        code = main(
            [
                "table2",
                "--channels", "120",
                "--subscriptions", "3000",
                "--nodes", "32",
                "--hours", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Corona-Lite" in out
        assert "Legacy-RSS" in out

    def test_deploy_runs(self, capsys):
        code = main(
            [
                "deploy",
                "--channels", "40",
                "--subscriptions", "400",
                "--nodes", "12",
                "--hours", "1",
                "--tau", "600",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detections:" in out


class TestSweepCLI:
    def test_sweep_run_defaults(self):
        args = build_parser().parse_args(["sweep", "run", "seed-grid"])
        assert args.jobs == 0  # 0 = auto (cpu count)
        assert args.retries == 1
        assert args.timeout is None
        assert not args.json
        assert args.out is None
        assert args.trace is None

    def test_sweep_list_names_every_builtin(self, capsys):
        code = main(["sweep", "list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in BUILTIN_NAMES:
            assert name in out

    def test_unknown_sweep_is_a_usage_error(self, capsys):
        code = main(["sweep", "run", "no-such-sweep"])
        assert code == 2
        assert "no-such-sweep" in capsys.readouterr().err

    def test_sweep_run_json_schema_and_out_layout(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        code = main(
            [
                "sweep", "run", "seed-grid",
                "-j", "2",
                "--json",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        merged = json.loads(capsys.readouterr().out)

        assert sorted(merged) == ["counts", "jobs", "sweep", "tasks"]
        assert merged["sweep"] == "seed-grid"
        assert merged["jobs"] == 2
        assert merged["counts"] == {"total": 3, "ok": 3, "failed": 0}
        # Enumeration order, never completion order.
        assert [entry["key"] for entry in merged["tasks"]] == [
            f"flash-crowd[base]@seed{seed}" for seed in (0, 1, 2)
        ]
        for entry in merged["tasks"]:
            assert entry["status"] == "ok"
            assert entry["error"] is None
            assert entry["metrics"]["scenario"] == "flash-crowd"

        # --out layout: merged artifact + summary + one canonical
        # per-variant file per completed task.
        assert (out_dir / "summary.txt").exists()
        on_disk = json.loads((out_dir / "sweep.json").read_text())
        assert on_disk == merged
        names = sorted(
            path.name for path in (out_dir / "flash-crowd").iterdir()
        )
        assert names == [
            "base.seed0.json", "base.seed1.json", "base.seed2.json",
        ]
        for seed, entry in zip((0, 1, 2), merged["tasks"]):
            path = out_dir / "flash-crowd" / f"base.seed{seed}.json"
            assert path.read_text() == variant_json(entry["metrics"])


class TestMetricsKeyOrderThroughMerge:
    def test_head_key_order_pinned_through_parallel_merge(self):
        """ScenarioMetrics' pinned key order survives the worker
        pickle boundary and the farm merge — the payload a parallel
        run hands back is ordered exactly like a direct
        ``to_dict()``."""
        (result,) = run_tasks([SweepTask("flash-crowd", None, 0)], jobs=2)
        keys = list(result.payload)
        head = list(ScenarioMetrics._HEAD_KEYS)
        assert keys[: len(head)] == head
        assert keys[len(head):] == [
            "bucket_times",
            "polls_per_min",
            "detection_bucket_times",
            "detection_delays",
        ]
        direct = (
            ScenarioRunner(get_scenario("flash-crowd"), seed=0)
            .run(None)
            .to_dict()
        )
        assert list(direct) == keys
        assert variant_json(direct) == variant_json(result.payload)


class TestReportCommand:
    """`repro report`: deterministic run reports (PR 10 tentpole)."""

    def test_json_byte_identical_across_invocations(self, capsys):
        def render():
            assert main(["report", "steady-state", "--format", "json"]) == 0
            return capsys.readouterr().out

        first, second = render(), render()
        assert first == second
        report = json.loads(first)
        assert report["scenario"] == "steady-state"
        # the acceptance surface: freshness percentiles + per-round
        # retransmission series are in the document
        percentiles = report["freshness"]["percentiles"]["freshness"]
        assert percentiles["p50"] is not None
        assert percentiles["p95"] is not None
        assert percentiles["p99"] is not None
        series = report["timeline"]["series"]
        assert "retransmissions" in series
        assert len(series["retransmissions"]["deltas"]) == len(
            report["timeline"]["times"]
        )

    def test_terminal_render_names_the_sections(self, capsys):
        assert main(["report", "steady-state"]) == 0
        out = capsys.readouterr().out
        assert "Run report — steady-state" in out
        assert "Freshness" in out
        assert "Timeline" in out
        assert "Counters" in out
        # deterministic by default: no wall-clock section
        assert "Phase timings" not in out

    def test_timings_flag_adds_wall_clock_section(self, capsys):
        assert main(["report", "steady-state", "--timings"]) == 0
        assert "Phase timings" in capsys.readouterr().out

    def test_out_writes_file_and_infers_format(self, tmp_path, capsys):
        target = tmp_path / "reports" / "steady.md"
        assert main(["report", "steady-state", "--out", str(target)]) == 0
        assert "wrote report to" in capsys.readouterr().out
        rendered = target.read_text()
        assert rendered.startswith("# Run report — steady-state")
        assert "| component | p50 |" in rendered

    def test_json_out_parses(self, tmp_path, capsys):
        target = tmp_path / "steady.json"
        assert main(["report", "steady-state", "--out", str(target)]) == 0
        report = json.loads(target.read_text())
        assert report["seed"] == 0

    def test_unknown_name_is_an_error(self, capsys):
        assert main(["report", "no-such-run"]) == 2
        assert "neither a registered scenario" in capsys.readouterr().err

    def test_sweep_name_renders_sweep_report(self, capsys):
        assert main(["report", "seed-grid", "--format", "json",
                     "-j", "1"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["sweep"] == "seed-grid"
        assert document["counts"]["reported"] == document["counts"]["total"]
        for task in document["tasks"]:
            assert task["report"]["freshness"]["detections"] >= 0


class TestBenchCompareGate:
    """`repro bench compare` exits non-zero on drift by default."""

    def _snapshot(self, tmp_path, name, mean):
        path = tmp_path / name
        path.write_text(json.dumps([{"fullname": "bench_a", "mean": mean}]))
        return str(path)

    def test_drift_gates_by_default(self, tmp_path, capsys):
        old = self._snapshot(tmp_path, "old.json", 1.0)
        new = self._snapshot(tmp_path, "new.json", 2.0)
        assert main(["bench", "compare", old, new]) == 1
        captured = capsys.readouterr()
        assert "drift gate failed" in captured.err
        assert "Perf drift gate" in captured.err

    def test_no_gate_restores_report_only(self, tmp_path, capsys):
        old = self._snapshot(tmp_path, "old.json", 1.0)
        new = self._snapshot(tmp_path, "new.json", 2.0)
        assert main(["bench", "compare", old, new, "--no-gate"]) == 0
        assert "FAIL" in capsys.readouterr().out

    def test_clean_run_passes(self, tmp_path, capsys):
        old = self._snapshot(tmp_path, "old.json", 1.0)
        new = self._snapshot(tmp_path, "new.json", 1.05)
        assert main(["bench", "compare", old, new]) == 0
        assert "PASS" in capsys.readouterr().out
