"""A minimal discrete-event simulation core.

Events are callbacks scheduled at absolute times on a binary heap;
ties break by insertion order, so same-time events run FIFO — a
property the protocol tests rely on.  Cancellation is lazy (flagged
and skipped on pop), the standard technique for heap-based schedulers.
"""

from __future__ import annotations

import heapq
import itertools
import logging
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.obs.log import get_logger, should_log

_log = get_logger(__name__)


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[float], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`EventEngine.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time


class RepeatingHandle:
    """Returned by :meth:`EventEngine.schedule_every`.

    Cancelling stops the series: the pending occurrence is cancelled
    and no further ones are scheduled.
    """

    __slots__ = ("_next", "cancelled")

    def __init__(self) -> None:
        self._next: EventHandle | None = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the repeating series (idempotent)."""
        self.cancelled = True
        if self._next is not None:
            self._next.cancel()


class EventEngine:
    """Time-ordered execution of scheduled callbacks."""

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self.now = 0.0
        self.executed = 0

    def schedule(
        self, when: float, callback: Callable[[float], None]
    ) -> EventHandle:
        """Schedule ``callback(now)`` at absolute time ``when``.

        Scheduling in the past raises — it always indicates a protocol
        bug rather than a legitimate need.
        """
        if when < self.now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self.now}"
            )
        event = _ScheduledEvent(
            time=when, seq=next(self._counter), callback=callback
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_in(
        self, delay: float, callback: Callable[[float], None]
    ) -> EventHandle:
        """Schedule ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        return self.schedule(self.now + delay, callback)

    def schedule_every(
        self,
        start: float,
        interval: float,
        callback: Callable[[float], None],
        until: float | None = None,
    ) -> "RepeatingHandle":
        """Fire ``callback`` at ``start`` and every ``interval`` after.

        Each occurrence runs the callback first and then schedules the
        next one (so a callback that cancels the handle stops the
        series).  ``until`` bounds the last occurrence (inclusive);
        ``None`` repeats forever — pair with :meth:`run_until`.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        handle = RepeatingHandle()
        if until is not None and start > until:
            return handle  # nothing to do: the bound excludes even start

        def fire(now: float) -> None:
            callback(now)
            next_time = now + interval
            if handle.cancelled:
                return
            if until is not None and next_time > until:
                return
            handle._next = self.schedule(next_time, fire)

        handle._next = self.schedule(start, fire)
        return handle

    # ------------------------------------------------------------------
    def run_until(self, horizon: float) -> int:
        """Execute events up to and including ``horizon``.

        Returns the number of events executed.  The clock is left at
        ``horizon`` even if the heap empties earlier.
        """
        executed = 0
        # Sampled progress at DEBUG: power-of-two event counts only,
        # so million-event runs stay readable (and the enabled check
        # runs once, outside the hot loop).
        debug = _log.isEnabledFor(logging.DEBUG)
        while self._heap and self._heap[0].time <= horizon:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(event.time)
            executed += 1
            if debug and should_log(executed, every=1 << 20):
                _log.debug(
                    "engine: %d events executed, t=%.0f (%d pending)",
                    self.executed + executed,
                    self.now,
                    len(self._heap),
                )
        self.now = max(self.now, horizon)
        self.executed += executed
        return executed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the heap completely (with a runaway guard)."""
        executed = 0
        while self._heap:
            if executed >= max_events:
                raise RuntimeError(
                    f"event cascade exceeded {max_events} events"
                )
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(event.time)
            executed += 1
        self.executed += executed
        return executed

    def pending(self) -> int:
        """Events still scheduled (including lazily-cancelled ones)."""
        return sum(1 for event in self._heap if not event.cancelled)

    def peek_time(self) -> float | None:
        """Time of the next live event, if any.

        Cancelled events at the top of the heap are discarded as a side
        effect (they would be skipped on pop anyway).
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
