"""Honeycomb: optimal performance-overhead tradeoffs on structured overlays.

The paper (§3.2) describes Honeycomb as "a light-weight toolkit for
computing optimal performance-overhead tradeoffs in structured
distributed systems".  It solves problems of the form

    minimize   sum_i f_i(l_i)
    subject to sum_i g_i(l_i) <= T,        l_i in {0, ..., K}

where ``f_i`` and ``g_i`` are monotonic in the discrete level ``l``.
The integral problem is NP-hard; Honeycomb instead computes the
Lagrangian relaxation exactly, yielding a bracketing pair of solutions
``L*_d`` (feasible) and ``L*_u`` (infeasible) that differ in at most
one channel, and returns ``L*_d``.

This package provides:

* :mod:`repro.honeycomb.problem` — the tradeoff-function abstraction;
* :mod:`repro.honeycomb.solver` — the numerical solver: per-channel
  convex hulls, the global exchange greedy, and the paper's
  λ-bracketing iteration in ``O(M log M log N)``;
* :mod:`repro.honeycomb.clusters` — tradeoff clusters: coarse-grained
  summaries of many channels, binned by the ``f_i/g_i`` ratio, capped
  at a constant number of bins per polling level;
* :mod:`repro.honeycomb.aggregation` — the decentralized exchange of
  cluster summaries along routing-table contacts, partitioning the
  identifier space so each channel is counted exactly once.
"""

from repro.honeycomb.aggregation import AggregationState, DecentralizedAggregator
from repro.honeycomb.clusters import ClusterSummary, TradeoffCluster
from repro.honeycomb.problem import ChannelTradeoff, TradeoffProblem
from repro.honeycomb.solver import (
    BracketingSolution,
    HoneycombSolver,
    ObjectHoneycombSolver,
    Solution,
    SolverWork,
)

__all__ = [
    "AggregationState",
    "BracketingSolution",
    "ChannelTradeoff",
    "ClusterSummary",
    "DecentralizedAggregator",
    "HoneycombSolver",
    "ObjectHoneycombSolver",
    "Solution",
    "SolverWork",
    "TradeoffCluster",
    "TradeoffProblem",
]
