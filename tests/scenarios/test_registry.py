"""Registry lookup, self-registration of built-ins, error paths."""

import pytest

from repro.scenarios import (
    get_scenario,
    list_scenarios,
    register,
    scenario_names,
)
from repro.scenarios.builtin import BUILTIN_NAMES
from repro.scenarios.registry import _REGISTRY, UnknownScenarioError
from tests.scenarios.conftest import tiny_spec


@pytest.fixture()
def scratch_registry():
    """Snapshot the registry and restore it after the test."""
    before = dict(_REGISTRY)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(before)


class TestBuiltins:
    def test_at_least_six_builtins(self):
        assert len(scenario_names()) >= 6

    def test_all_builtin_names_registered(self):
        names = set(scenario_names())
        assert set(BUILTIN_NAMES) <= names

    def test_specs_are_valid(self):
        for spec in list_scenarios():
            spec.validate()

    def test_get_returns_named_spec(self):
        assert get_scenario("heavy-churn").name == "heavy-churn"


class TestLookupErrors:
    def test_unknown_scenario_lists_available(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            get_scenario("warp-speed")
        message = str(excinfo.value)
        assert "warp-speed" in message
        assert "heavy-churn" in message


class TestRegister:
    def test_register_and_lookup(self, scratch_registry):
        spec = register(tiny_spec(name="tmp-registered"))
        assert get_scenario("tmp-registered") is spec
        assert "tmp-registered" in scenario_names()

    def test_duplicate_rejected(self, scratch_registry):
        register(tiny_spec(name="tmp-dup"))
        with pytest.raises(ValueError, match="already registered"):
            register(tiny_spec(name="tmp-dup"))

    def test_replace_allowed(self, scratch_registry):
        register(tiny_spec(name="tmp-rep"))
        replacement = register(
            tiny_spec(name="tmp-rep", n_nodes=16), replace=True
        )
        assert get_scenario("tmp-rep") is replacement

    def test_register_validates(self, scratch_registry):
        with pytest.raises(Exception):
            register(tiny_spec(name="tmp-bad", n_nodes=0))
