"""The level controller: one step per maintenance round."""

import pytest

from repro.core.maintenance import LevelController


class TestLevelController:
    def test_steps_toward_target_one_at_a_time(self):
        controller = LevelController()
        controller.set_target("http://a/", 0)
        level = 3
        trajectory = []
        for _ in range(5):
            level = controller.step("http://a/", level)
            trajectory.append(level)
        assert trajectory == [2, 1, 0, 0, 0]

    def test_steps_upward(self):
        controller = LevelController()
        controller.set_target("http://a/", 3)
        assert controller.step("http://a/", 1) == 2

    def test_no_target_means_hold(self):
        controller = LevelController()
        assert controller.step("http://a/", 2) == 2

    def test_settled(self):
        controller = LevelController()
        controller.set_target("http://a/", 1)
        assert not controller.settled("http://a/", 2)
        assert controller.settled("http://a/", 1)
        assert controller.settled("http://unknown/", 7)

    def test_negative_target_rejected(self):
        controller = LevelController()
        with pytest.raises(ValueError):
            controller.set_target("http://a/", -1)

    def test_target_can_change_mid_flight(self):
        """The optimizer may revise its mind while a transition is in
        progress; the controller always steps toward the latest target."""
        controller = LevelController()
        controller.set_target("http://a/", 0)
        level = controller.step("http://a/", 3)  # 2
        controller.set_target("http://a/", 3)
        level = controller.step("http://a/", level)
        assert level == 3
