"""Ablation — Honeycomb's solution strategy (DESIGN.md §5.1).

The paper stresses that pre-computing the discrete λ iteration space
and bracketing over it gives O(M log M log N) total work with O(log M)
iterations.  This bench times the bracketing solver against the naive
move-at-a-time scan on a paper-sized instance (M = 20 000 channels),
and checks they agree.
"""

import random

import pytest

from repro.honeycomb.problem import ChannelTradeoff, TradeoffProblem
from repro.honeycomb.solver import HoneycombSolver


def paper_sized_problem(m=20_000, k=3, seed=3) -> TradeoffProblem:
    rng = random.Random(seed)
    channels = []
    for index in range(m):
        q = rng.paretovariate(0.5)
        s = rng.uniform(1.0, 16.0)
        levels = tuple(range(k + 1))
        channels.append(
            ChannelTradeoff(
                key=index,
                levels=levels,
                f=tuple(q * 16**level for level in levels),
                g=tuple(s * 1024.0 / 16**level for level in levels),
            )
        )
    budget = sum(channel.g[1] for channel in channels) * 0.8
    return TradeoffProblem(channels=channels, target=budget)


@pytest.fixture(scope="module")
def problem() -> TradeoffProblem:
    return paper_sized_problem()


def test_solver_bracketing(benchmark, problem):
    # memo off: the ablation times the bracketing kernel itself, not
    # an LRU replay of the first iteration's solution.
    solver = HoneycombSolver(validate=False, memo_solve=False)
    solution = benchmark(lambda: solver.solve(problem))
    assert solution.feasible


def test_solver_scan_baseline(benchmark, problem):
    solver = HoneycombSolver(validate=False, memo_solve=False)
    solution = benchmark(lambda: solver.solve_scan(problem))
    assert solution.feasible


def test_strategies_agree(benchmark, problem):
    solver = HoneycombSolver(validate=False, memo_solve=False)

    def both():
        return solver.solve(problem), solver.solve_scan(problem)

    fast, slow = benchmark.pedantic(both, rounds=1, iterations=1)
    assert abs(fast.objective - slow.objective) <= 1e-6 * slow.objective
    assert abs(fast.cost - slow.cost) <= 1e-6 * slow.cost
