"""Unit tests for the run-report builders/renderers (repro.obs.report).

Renderers return strings — nothing in the module prints (the T20
no-print sweep in ``test_logging.py`` enforces that mechanically);
these tests pin the document shape, the determinism split between the
byte-stable body and the opt-in ``wall_timings`` leg, and the
sparkline resampler.
"""

from __future__ import annotations

import json

from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    TIMELINE_SERIES,
    build_scenario_report,
    build_sweep_report,
    phase_timings,
    render_report_markdown,
    render_report_terminal,
    render_sweep_report_markdown,
    render_sweep_report_terminal,
    sparkline,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioRunner


def _introspected_run(name="steady-state", seed=0, trace=False):
    obs = Observability.introspected(seed=seed, trace=trace)
    runner = ScenarioRunner(get_scenario(name), seed=seed, obs=obs)
    metrics = runner.run()
    return obs, metrics


class TestSparkline:
    def test_empty_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0, 0.0]) == "▁▁▁"

    def test_peak_gets_the_tallest_glyph(self):
        chart = sparkline([0.0, 1.0, 8.0, 1.0])
        assert len(chart) == 4
        assert chart[2] == "█"
        assert chart[0] == "▁"

    def test_resampling_preserves_spike_mass(self):
        values = [0.0] * 100
        values[73] = 50.0
        chart = sparkline(values, width=10)
        assert len(chart) == 10
        assert "█" in chart  # the spike survives 10:1 resampling

    def test_none_and_nan_render_as_zero(self):
        assert sparkline([None, float("nan"), 4.0]) == "▁▁█"


class TestScenarioReport:
    def test_document_shape(self):
        obs, metrics = _introspected_run()
        report = build_scenario_report(
            metrics.to_dict(),
            timeline=obs.timeline,
            provenance=obs.provenance,
            violations=metrics.violations,
        )
        assert report["scenario"] == "steady-state"
        assert report["headline"]["detections"] == metrics.detections
        assert report["timeline"]["rounds"] > 0
        assert report["freshness"]["detections"] > 0
        assert "wall_timings" not in report  # no registry passed

    def test_default_report_is_byte_stable(self):
        def build():
            obs, metrics = _introspected_run()
            return json.dumps(
                build_scenario_report(
                    metrics.to_dict(),
                    timeline=obs.timeline,
                    provenance=obs.provenance,
                ),
                sort_keys=True,
            )

        assert build() == build()

    def test_wall_timings_only_with_traced_registry(self):
        obs, metrics = _introspected_run(trace=True)
        report = build_scenario_report(
            metrics.to_dict(),
            timeline=obs.timeline,
            provenance=obs.provenance,
            registry=obs.registry,
        )
        assert "wall_timings" in report
        assert "poll_batch" in report["wall_timings"]
        # …and renders as its own clearly-labeled section
        assert "nondeterministic" in render_report_terminal(report)

    def test_phase_timings_none_without_spans(self):
        assert phase_timings(MetricsRegistry()) is None

    def test_renderers_cover_every_timeline_series(self):
        obs, metrics = _introspected_run()
        report = build_scenario_report(
            metrics.to_dict(),
            timeline=obs.timeline,
            provenance=obs.provenance,
        )
        for rendered in (
            render_report_terminal(report),
            render_report_markdown(report),
        ):
            for series in TIMELINE_SERIES:
                assert series in rendered
            for component in ("staleness", "path_delay", "freshness"):
                assert component in rendered

    def test_markdown_renderer_emits_tables(self):
        obs, metrics = _introspected_run()
        report = build_scenario_report(
            metrics.to_dict(),
            timeline=obs.timeline,
            provenance=obs.provenance,
        )
        rendered = render_report_markdown(report)
        assert rendered.startswith("# Run report — steady-state")
        assert "| component | p50 |" in rendered


class TestSweepReport:
    def _document(self):
        obs, metrics = _introspected_run()
        scenario_report = build_scenario_report(
            metrics.to_dict(),
            timeline=obs.timeline,
            provenance=obs.provenance,
        )
        return build_sweep_report(
            "demo-sweep",
            [
                {
                    "key": "steady-state/base/0",
                    "scenario": "steady-state",
                    "variant": "base",
                    "seed": 0,
                    "status": "ok",
                    "report": scenario_report,
                },
                {
                    "key": "steady-state/base/1",
                    "scenario": "steady-state",
                    "variant": "base",
                    "seed": 1,
                    "status": "failed",
                    "report": None,
                },
            ],
        )

    def test_counts_and_rows(self):
        document = self._document()
        assert document["counts"] == {"total": 2, "reported": 1}
        rendered = render_sweep_report_terminal(document)
        assert "demo-sweep" in rendered
        assert "1/2" in rendered
        assert "steady-state/base/1" in rendered  # failed row present

    def test_markdown_table(self):
        rendered = render_sweep_report_markdown(self._document())
        assert "| task | status |" in rendered
        assert rendered.count("\n| steady-state/base/") == 2
