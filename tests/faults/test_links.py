"""LinkTable unit semantics: shaping, adaptivity, conservation.

The per-link refinement of the FaultPlane (``repro.faults.links``):
token-bucket bandwidth caps with bounded queues whose overflow drops
are counted apart from loss drops, asymmetric per-link loss overrides
falling back to the plane's global rates, EWMA-RTT adaptive backoff
with window-bounded suppression, backpressure-driven poll shedding
with hysteresis, and the declarative multi-DC topology builder — all
under the same determinism contract as the plane itself.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultPlane,
    LinkSpec,
    LinkTable,
    assign_topology,
    build_link_table,
    validate_links_config,
)


def make(seed=0, retry_budget=2, **plane_kwargs):
    plane = FaultPlane(seed=seed, retry_budget=retry_budget, **plane_kwargs)
    table = LinkTable(seed=seed)
    plane.install_links(table)
    return plane, table


class TestInactiveTable:
    def test_empty_table_is_inactive(self):
        plane, table = make()
        assert not table.active
        assert not plane.active  # an empty table alone activates nothing

    def test_inactive_table_draws_no_randomness(self):
        plane, table = make(loss_rate=0.0)
        plane.partition("ghost", members=())  # activates the plane only
        state = table.rng.getstate()
        for _ in range(50):
            plane.transmit("a", "b")
            plane.observe_time(60.0)
        assert table.rng.getstate() == state
        assert not plane.ever_active

    def test_lifted_imposition_deactivates(self):
        plane, table = make()
        handle = table.impose(LinkSpec(loss=0.5), senders=["a"])
        assert table.active and plane.active
        table.lift(handle)
        assert not table.active
        table.lift(handle)  # idempotent

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(loss=1.5).validate()
        with pytest.raises(ValueError):
            LinkSpec(latency=-1.0).validate()
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0.0).validate()
        with pytest.raises(ValueError):
            LinkSpec(burst=0.5).validate()
        with pytest.raises(ValueError):
            LinkSpec(queue_limit=0).validate()
        with pytest.raises(ValueError):
            LinkTable(retry_window=0.0)
        with pytest.raises(ValueError):
            LinkTable(shed_threshold=0.2, shed_recover=0.5)


class TestSpecResolution:
    def test_asymmetric_override_is_directional(self):
        plane, table = make(retry_budget=0)
        table.set_link("a", "b", LinkSpec(loss=1.0))
        assert not plane.transmit("a", "b").delivered
        assert plane.transmit("b", "a").delivered  # reverse link clean

    def test_no_override_falls_back_to_global_rates(self):
        """A link the table does not spec uses the plane's uniform
        model bit-for-bit (same generator, same decisions)."""
        plane, table = make(seed=11, loss_rate=0.3, duplicate_rate=0.1)
        table.set_link("x", "y", LinkSpec(latency=1.0))  # activates table
        bare = FaultPlane(seed=11, loss_rate=0.3, duplicate_rate=0.1)
        routed = [plane.transmit("a", "b") for _ in range(200)]
        direct = [bare.transmit("a", "b") for _ in range(200)]
        assert [(o.deliveries, o.attempts) for o in routed] == [
            (o.deliveries, o.attempts) for o in direct
        ]
        assert all(o.delay == 0.0 for o in routed)

    def test_zero_loss_override_shields_a_lossy_plane(self):
        plane, table = make(loss_rate=1.0, retry_budget=0)
        table.set_link("a", "b", LinkSpec(loss=0.0, latency=0.01))
        assert plane.transmit("a", "b").delivered
        assert not plane.transmit("c", "d").delivered  # global applies

    def test_overlapping_impositions_merge_additively(self):
        plane, table = make(retry_budget=0)
        table.impose(LinkSpec(loss=0.2, latency=1.0), senders=["a"])
        table.impose(LinkSpec(loss=0.3, latency=0.5), recipients=["b"])
        merged = table.spec_for("a", "b")
        assert merged.loss == pytest.approx(0.5)
        assert merged.latency == pytest.approx(1.5)
        assert table.spec_for("a", "c").loss == pytest.approx(0.2)
        assert table.spec_for("c", "b").loss == pytest.approx(0.3)
        assert table.spec_for("c", "d") is None

    def test_merge_takes_most_restrictive_cap(self):
        table = LinkTable()
        table.impose(
            LinkSpec(bandwidth=5.0, burst=4.0, queue_limit=10),
            senders=["a"],
        )
        table.impose(
            LinkSpec(bandwidth=1.0, burst=1.0, queue_limit=4),
            recipients=["b"],
        )
        merged = table.spec_for("a", "b")
        assert merged.bandwidth == 1.0
        assert merged.burst == 1.0
        assert merged.queue_limit == 4

    def test_lift_restores_the_clean_link(self):
        plane, table = make(retry_budget=0)
        handle = table.impose(LinkSpec(loss=1.0), senders=["a"])
        assert not plane.transmit("a", "b").delivered
        table.lift(handle)
        table.set_link("x", "y", LinkSpec(latency=1.0))  # keep active
        assert plane.transmit("a", "b").delivered


class TestTokenBucket:
    def test_burst_then_queue_then_overflow(self):
        plane, table = make()
        table.set_link(
            "a", "b", LinkSpec(bandwidth=0.5, burst=2.0, queue_limit=3)
        )
        outcomes = [plane.transmit("a", "b") for _ in range(8)]
        # burst=2 ship instantly, 3 queue with increasing wait, the
        # remaining 3 overflow — dropped without retransmission.
        assert [o.delivered for o in outcomes] == [True] * 5 + [False] * 3
        assert [o.delay for o in outcomes[:5]] == [
            0.0, 0.0, 2.0, 4.0, 6.0
        ]
        assert all(o.attempts == 1 for o in outcomes[5:])
        assert plane.counters.queued_messages == 3
        assert plane.counters.queue_drops == 3
        assert plane.counters.messages_dropped == 0  # distinct ledgers
        assert plane.counters.retransmissions == 0

    def test_advance_refills_and_drains(self):
        plane, table = make()
        table.set_link(
            "a", "b", LinkSpec(bandwidth=1.0, burst=2.0, queue_limit=8)
        )
        for _ in range(6):
            plane.transmit("a", "b")
        assert table.queue_totals()["backlog"] == 4
        plane.observe_time(3.0)  # refill capped at burst=2 -> 2 drain
        assert table.queue_totals() == {
            "enqueued": 4, "drained": 2, "backlog": 2, "overflowed": 0
        }
        plane.observe_time(100.0)
        totals = table.queue_totals()
        assert totals["backlog"] == 0
        assert totals["drained"] == totals["enqueued"]
        assert table.conservation_errors() == []

    def test_lift_flushes_backlog_on_next_advance(self):
        plane, table = make()
        handle = table.impose(
            LinkSpec(bandwidth=0.1, burst=1.0, queue_limit=8),
            senders=["a"],
        )
        for _ in range(5):
            plane.transmit("a", "b")
        assert table.queue_totals()["backlog"] == 4
        table.lift(handle)
        plane.observe_time(1.0)  # cap gone: everything ships at once
        assert table.queue_totals()["backlog"] == 0
        assert table.conservation_errors() == []

    def test_conservation_errors_catch_corruption(self):
        plane, table = make()
        table.set_link("a", "b", LinkSpec(bandwidth=0.5, queue_limit=2))
        for _ in range(4):
            plane.transmit("a", "b")
        assert table.conservation_errors() == []
        state = table._states[("a", "b")]
        state.drained += 1  # books a drain that never happened
        assert any(
            "enqueued" in error for error in table.conservation_errors()
        )


class TestAdaptiveBackoff:
    def test_backoff_accrues_delay_on_lossy_links(self):
        plane, table = make(seed=3, retry_budget=3)
        table.set_link("a", "b", LinkSpec(loss=0.6, latency=0.5))
        outcomes = [plane.transmit("a", "b") for _ in range(300)]
        retried_ok = [
            o for o in outcomes if o.delivered and o.attempts > 1
        ]
        assert retried_ok  # retries genuinely recover messages
        # Every retried delivery paid at least one backed-off RTO wait
        # on top of the 0.5 s link latency.
        assert all(o.delay > 0.5 for o in retried_ok)
        first_try = [
            o for o in outcomes if o.delivered and o.attempts == 1
        ]
        assert all(0.5 <= o.delay <= 1.0 for o in first_try)  # + jitter=0

    def test_window_exhaustion_suppresses_retries(self):
        plane, table = make(seed=5, retry_budget=4)
        table.retry_window = 0.5
        table.rto_min = 0.4  # second wait (>= 0.8) cannot fit 0.5 s
        table.set_link("a", "b", LinkSpec(loss=1.0))
        outcome = plane.transmit("a", "b")
        assert not outcome.delivered
        assert outcome.attempts < 5  # budget not fully burned
        assert plane.counters.retries_suppressed > 0
        assert (
            outcome.attempts - 1 + plane.counters.retries_suppressed
            + plane.counters.messages_dropped - outcome.attempts
            >= 0
        )
        # Accounting: spent + suppressed covers the whole budget.
        assert (
            (outcome.attempts - 1) + plane.counters.retries_suppressed
            == 4
        )

    def test_rto_seeds_from_link_latency_and_adapts(self):
        plane, table = make()
        spec = LinkSpec(latency=2.0)
        table.set_link("a", "b", spec)
        state = table._state(("a", "b"))
        assert table._current_rto(state, spec) == 4.0  # 2x base latency
        plane.transmit("a", "b")  # observes ~2 RTTs of 4.0
        assert state.srtt is not None
        assert table._current_rto(state, spec) >= table.rto_min

    def test_rto_clamped_to_bounds(self):
        table = LinkTable(rto_min=0.2, rto_max=5.0)
        spec = LinkSpec(latency=100.0)
        state = table._state(("a", "b"))
        assert table._current_rto(state, spec) == 5.0
        fast = LinkSpec(latency=0.001)
        assert table._current_rto(state, fast) == 0.2


class TestLoadShedding:
    def fill(self, plane, n):
        for _ in range(n):
            plane.transmit("a", "b")

    def test_hysteresis_shed_and_recover(self):
        plane, table = make()
        table.set_link(
            "a", "b", LinkSpec(bandwidth=1.0, burst=1.0, queue_limit=4)
        )
        assert not table.should_shed_poll("a")
        self.fill(plane, 4)  # backlog 3/4 = 0.75 -> shed
        assert table.should_shed_poll("a")
        plane.observe_time(1.0)  # backlog 2/4: above recover, still shed
        assert table.should_shed_poll("a")
        plane.observe_time(3.0)  # backlog 1/4: at the recover floor
        assert not table.should_shed_poll("a")
        assert not table.should_shed_poll("a")  # stays recovered

    def test_only_the_congested_sender_sheds(self):
        plane, table = make()
        table.set_link(
            "a", "b", LinkSpec(bandwidth=1.0, burst=1.0, queue_limit=4)
        )
        self.fill(plane, 4)
        assert table.should_shed_poll("a")
        assert not table.should_shed_poll("b")
        assert not table.should_shed_poll("z")  # no outbound state at all

    def test_backpressure_is_max_over_outbound_links(self):
        plane, table = make()
        table.set_link(
            "a", "b", LinkSpec(bandwidth=1.0, burst=1.0, queue_limit=4)
        )
        table.set_link(
            "a", "c", LinkSpec(bandwidth=1.0, burst=1.0, queue_limit=8)
        )
        self.fill(plane, 4)  # a->b at 3/4
        for _ in range(2):
            plane.transmit("a", "c")  # a->c at 1/8
        assert table.backpressure("a") == pytest.approx(0.75)


class TestDeterminism:
    def decisions(self, seed):
        plane, table = make(seed=seed, retry_budget=2)
        table.set_link("a", "b", LinkSpec(loss=0.4, latency=0.2, jitter=0.3))
        return [
            (o.deliveries, o.attempts, o.delay)
            for o in (plane.transmit("a", "b") for _ in range(300))
        ]

    def test_same_seed_same_decisions(self):
        assert self.decisions(7) == self.decisions(7)
        assert self.decisions(7) != self.decisions(8)

    def test_table_rng_independent_of_plane_rng(self):
        plane, table = make(seed=1, loss_rate=0.5)
        table.set_link("a", "b", LinkSpec(loss=0.5))
        plane_state = plane.rng.getstate()
        for _ in range(50):
            plane.transmit("a", "b")  # overridden: table's rng only
        assert plane.rng.getstate() == plane_state


class TestMultiDC:
    CONFIG = {
        "topology": "multi-dc",
        "dcs": 3,
        "intra_latency": 0.005,
        "inter_latency": 0.12,
        "jitter_fraction": 0.25,
        "inter_loss": 0.02,
    }

    def test_builder_resolves_intra_vs_inter(self):
        table = build_link_table(self.CONFIG, seed=0)
        assign_topology(table, [f"n{i}" for i in range(6)], dcs=3)
        intra = table.spec_for("n0", "n3")  # both dc-0
        inter = table.spec_for("n0", "n1")  # dc-0 -> dc-1
        assert intra.latency == pytest.approx(0.005)
        assert intra.loss is None  # intra-DC keeps the global rate
        assert inter.latency == pytest.approx(0.12)
        assert inter.loss == pytest.approx(0.02)
        assert inter.jitter == pytest.approx(0.12 * 0.25)

    def test_latency_matrix_overrides_the_uniform_split(self):
        config = {
            "topology": "multi-dc",
            "dcs": 2,
            "latency_matrix": [[0.0, 0.2], [0.05, 0.0]],
        }
        table = build_link_table(config, seed=0)
        assign_topology(table, ["a", "b"], dcs=2)
        assert table.spec_for("a", "b").latency == pytest.approx(0.2)
        assert table.spec_for("b", "a").latency == pytest.approx(0.05)

    def test_unassigned_nodes_get_clean_links(self):
        table = build_link_table(self.CONFIG, seed=0)
        assign_topology(table, ["n0", "n1"], dcs=3)
        assert table.spec_for("n0", "late-joiner") is None
        assert table.spec_for("late-joiner", "n0") is None

    def test_config_validation(self):
        validate_links_config(self.CONFIG)
        with pytest.raises(ValueError, match="topology"):
            validate_links_config({"topology": "star"})
        with pytest.raises(ValueError, match="unknown"):
            validate_links_config(
                {"topology": "multi-dc", "latncy": 1.0}
            )
        with pytest.raises(ValueError, match="dcs"):
            validate_links_config({"topology": "multi-dc", "dcs": 1})
        with pytest.raises(ValueError, match="latency_matrix"):
            validate_links_config(
                {
                    "topology": "multi-dc",
                    "dcs": 3,
                    "latency_matrix": [[0.0, 1.0], [1.0, 0.0]],
                }
            )
        with pytest.raises(ValueError, match="inter_loss"):
            validate_links_config(
                {"topology": "multi-dc", "inter_loss": 1.5}
            )
