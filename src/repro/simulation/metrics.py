"""Metrics collection shared by all experiments.

The paper's figures are either time series (Figures 3, 4, 9, 10:
load and detection time vs experiment hour) or per-channel scatters
(Figures 5–8: pollers / detection time vs channel rank).  This module
provides both containers plus the weighted-average bookkeeping Table 2
summarizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TimeSeries:
    """Bucketed time series: values accumulated into fixed-width bins."""

    bucket_width: float
    _sums: dict[int, float] = field(default_factory=dict)
    _counts: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bucket_width <= 0:
            raise ValueError("bucket width must be positive")

    def add(self, time: float, value: float) -> None:
        """Accumulate ``value`` into the bucket containing ``time``."""
        bucket = int(time // self.bucket_width)
        self._sums[bucket] = self._sums.get(bucket, 0.0) + value
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        """Bucket mid-point times, ascending."""
        buckets = sorted(self._sums)
        return np.array(
            [(b + 0.5) * self.bucket_width for b in buckets], dtype=np.float64
        )

    def means(self) -> np.ndarray:
        """Per-bucket mean value."""
        buckets = sorted(self._sums)
        return np.array(
            [self._sums[b] / self._counts[b] for b in buckets],
            dtype=np.float64,
        )

    def sums(self) -> np.ndarray:
        """Per-bucket total."""
        buckets = sorted(self._sums)
        return np.array([self._sums[b] for b in buckets], dtype=np.float64)

    def rates(self) -> np.ndarray:
        """Per-bucket total divided by bucket width (events/unit time)."""
        return self.sums() / self.bucket_width

    def __len__(self) -> int:
        return len(self._sums)


@dataclass
class PerChannelStats:
    """Accumulators keyed by channel index."""

    n_channels: int
    delay_sum: np.ndarray = field(init=False)
    delay_count: np.ndarray = field(init=False)
    poll_count: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.delay_sum = np.zeros(self.n_channels, dtype=np.float64)
        self.delay_count = np.zeros(self.n_channels, dtype=np.int64)
        self.poll_count = np.zeros(self.n_channels, dtype=np.int64)

    def record_detection(self, channel: int, delay: float) -> None:
        """One update's detection delay for ``channel``."""
        self.delay_sum[channel] += delay
        self.delay_count[channel] += 1

    def record_polls(self, channel: int, count: int = 1) -> None:
        """Polls charged to ``channel``'s server."""
        self.poll_count[channel] += count

    def mean_delays(self, default: float = float("nan")) -> np.ndarray:
        """Per-channel mean detection delay (``default`` where unseen)."""
        means = np.full(self.n_channels, default, dtype=np.float64)
        seen = self.delay_count > 0
        means[seen] = self.delay_sum[seen] / self.delay_count[seen]
        return means


@dataclass
class MetricsCollector:
    """Everything one experiment run records.

    ``subscription_weighted_delay`` maintains the running average the
    paper optimizes: per-update delays weighted by the channel's
    subscriber count ("each client counts as a separate unit", §3.1).
    """

    n_channels: int
    bucket_width: float = 300.0
    detection_series: TimeSeries = field(init=False)
    load_series: TimeSeries = field(init=False)
    per_channel: PerChannelStats = field(init=False)
    _weighted_delay_sum: float = 0.0
    _weighted_delay_count: float = 0.0

    def __post_init__(self) -> None:
        self.detection_series = TimeSeries(self.bucket_width)
        self.load_series = TimeSeries(self.bucket_width)
        self.per_channel = PerChannelStats(self.n_channels)

    # ------------------------------------------------------------------
    def record_detection(
        self, channel: int, delay: float, subscribers: float, at: float
    ) -> None:
        """One fresh update: delay weighted by channel popularity."""
        self.per_channel.record_detection(channel, delay)
        if subscribers > 0:
            self.detection_series.add(at, delay)
            self._weighted_delay_sum += delay * subscribers
            self._weighted_delay_count += subscribers

    def record_polls(self, channel: int, count: int, at: float) -> None:
        """Polls hitting ``channel``'s server around time ``at``."""
        self.per_channel.record_polls(channel, count)
        self.load_series.add(at, float(count))

    # ------------------------------------------------------------------
    def mean_weighted_delay(self) -> float:
        """Table 2's "average update detection time"."""
        if self._weighted_delay_count == 0:
            return float("nan")
        return self._weighted_delay_sum / self._weighted_delay_count

    def mean_polls_per_channel_per_tau(
        self, duration: float, tau: float
    ) -> float:
        """Table 2's "average load (polls per 30 min per channel)"."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        total_polls = float(self.per_channel.poll_count.sum())
        intervals = duration / tau
        return total_polls / intervals / self.n_channels
