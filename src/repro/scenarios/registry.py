"""Named scenario registry.

Built-ins self-register on package import
(:mod:`repro.scenarios.builtin`); downstream experiments register
their own specs with :func:`register`.  Lookup failures raise
:class:`UnknownScenarioError` listing what *is* available, so a CLI
typo is a one-line fix.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec

_REGISTRY: dict[str, ScenarioSpec] = {}


class UnknownScenarioError(KeyError):
    """Requested scenario name is not registered."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Validate and register ``spec`` under its name; returns it."""
    spec.validate()
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"scenario {spec.name!r} already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name) from None


def scenario_names() -> list[str]:
    """Registered names, sorted."""
    return sorted(_REGISTRY)


def list_scenarios() -> list[ScenarioSpec]:
    """Registered specs, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]
