"""Churn equivalence: incremental aggregation == from-scratch rebuild.

The incremental churn paths splice joins and failures into existing
aggregation state instead of reconstructing it.  The paper's
correctness argument (§3.3) is that aggregation is self-repairing:
every round recomputes each radius from the previous round's snapshot,
so any membership event is fully absorbed within ``rows`` rounds.
These tests assert the strong form of that claim: after *any* seeded
sequence of joins and crashes, loading locals and running ``rows``
rounds on the incrementally-maintained aggregator yields summaries
**bit-for-bit identical** to a from-scratch rebuild driven the same
way (dataclass equality compares every cluster sum exactly).
"""

import random

import pytest

from repro.core.config import CoronaConfig
from repro.core.system import CoronaSystem
from repro.honeycomb.aggregation import DecentralizedAggregator
from repro.honeycomb.clusters import ChannelFactors
from repro.overlay.network import OverlayNetwork
from repro.simulation.webserver import WebServerFarm


def synthetic_channels(node_id):
    """Deterministic per-node channel factors (some nodes own none)."""
    value = node_id.value
    if value % 3 == 0:
        return []
    return [
        (
            ChannelFactors(
                subscribers=1 + value % 13,
                size=100.0 + value % 900,
                update_interval=60.0 * (1 + value % 7),
                level=value % 4,
            ),
            value % 5 == 0,  # orphan flag
            float(1 + value % 11),
        )
    ]


def converged_states(aggregator, local_channels):
    """Load locals and run ``rows`` rounds; return the states dict."""
    aggregator.load_local(local_channels)
    for _ in range(aggregator.rows):
        aggregator.run_round()
    return aggregator.states


def assert_equivalent(incremental, overlay, local_channels):
    """Incremental + rows rounds must equal rebuild + rows rounds."""
    rebuilt = DecentralizedAggregator.for_overlay(
        overlay, bins=incremental.bins
    )
    assert incremental.rows == rebuilt.rows
    assert set(incremental.states) == set(rebuilt.states)
    left = converged_states(incremental, local_channels)
    right = converged_states(rebuilt, local_channels)
    assert left == right  # dataclass equality: exact float sums


class TestAggregatorChurnEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_randomized_join_crash_sequences(self, seed):
        """Seeded random churn, checked against a rebuild at each step."""
        rng = random.Random(seed)
        overlay = OverlayNetwork.build(24, base=4, leaf_size=3, seed=seed)
        aggregator = DecentralizedAggregator.for_overlay(overlay, bins=8)
        minted = 0
        for step in range(12):
            if rng.random() < 0.5 and len(overlay) > 4:
                count = rng.randint(1, min(3, len(overlay) - 4))
                victims = rng.sample(overlay.node_ids(), count)
                overlay.remove_nodes(victims)
                aggregator.remove_nodes(
                    victims, rows=overlay.aggregation_rows()
                )
            else:
                count = rng.randint(1, 3)
                joined = []
                for _ in range(count):
                    minted += 1
                    joined.append(
                        overlay.add_node(f"eq-{seed}-{minted}").node_id
                    )
                aggregator.add_nodes(
                    joined, rows=overlay.aggregation_rows()
                )
            if step % 3 == 2:
                assert_equivalent(aggregator, overlay, synthetic_channels)
        assert_equivalent(aggregator, overlay, synthetic_channels)

    def test_equivalence_holds_with_interleaved_rounds(self):
        """Running rounds *between* churn events must not break it."""
        overlay = OverlayNetwork.build(20, base=4, leaf_size=3, seed=9)
        aggregator = DecentralizedAggregator.for_overlay(overlay, bins=8)
        rng = random.Random(9)
        for index in range(6):
            aggregator.load_local(synthetic_channels)
            aggregator.run_round()
            victim = rng.choice(overlay.node_ids())
            overlay.remove_nodes([victim])
            aggregator.remove_nodes([victim], rows=overlay.aggregation_rows())
            joined = overlay.add_node(f"mid-{index}").node_id
            aggregator.add_nodes([joined], rows=overlay.aggregation_rows())
        assert_equivalent(aggregator, overlay, synthetic_channels)


class TestHorizonTrimming:
    """Survivors keep summaries of untouched prefix regions only."""

    def test_removal_trims_only_the_changed_region(self):
        overlay = OverlayNetwork.build(16, base=4, leaf_size=3, seed=3)
        aggregator = DecentralizedAggregator.for_overlay(overlay, bins=8)
        states = converged_states(aggregator, synthetic_channels)
        victim = overlay.node_ids()[5]
        spl = {
            node_id: node_id.shared_prefix_len(victim, overlay.base)
            for node_id in overlay.node_ids()
            if node_id != victim
        }
        rows_before = aggregator.rows
        overlay.remove_nodes([victim])
        aggregator.remove_nodes([victim])
        assert victim not in aggregator.states
        for node_id, prefix in spl.items():
            state = states[node_id]
            for radius in range(rows_before + 1):
                present = radius in state.summaries
                if radius <= min(prefix, rows_before - 1):
                    assert not present, (
                        f"radius {radius} of {node_id} covered the victim "
                        "and must be dropped"
                    )
                elif radius >= rows_before or radius > prefix:
                    # untouched region (or the local summary): kept
                    assert present

    def test_join_trims_only_the_changed_region(self):
        overlay = OverlayNetwork.build(16, base=4, leaf_size=3, seed=4)
        aggregator = DecentralizedAggregator.for_overlay(overlay, bins=8)
        converged_states(aggregator, synthetic_channels)
        rows_before = aggregator.rows
        joined = overlay.add_node("trim-joiner").node_id
        aggregator.add_nodes([joined])
        assert aggregator.states[joined].summaries == {}
        for node_id, state in aggregator.states.items():
            if node_id == joined:
                continue
            prefix = node_id.shared_prefix_len(joined, overlay.base)
            for radius in range(rows_before + 1):
                present = radius in state.summaries
                if radius <= min(prefix, rows_before - 1):
                    assert not present
                elif radius >= rows_before or radius > prefix:
                    assert present

    def test_add_existing_node_rejected(self):
        overlay = OverlayNetwork.build(4, base=4, leaf_size=2, seed=0)
        aggregator = DecentralizedAggregator.for_overlay(overlay, bins=8)
        with pytest.raises(ValueError):
            aggregator.add_nodes([overlay.node_ids()[0]])

    def test_remove_unknown_node_rejected(self):
        overlay = OverlayNetwork.build(4, base=4, leaf_size=2, seed=0)
        aggregator = DecentralizedAggregator.for_overlay(overlay, bins=8)
        ghost = overlay.add_node("ghost").node_id
        overlay.remove_nodes([ghost])
        aggregator_fresh = DecentralizedAggregator.for_overlay(overlay)
        with pytest.raises(KeyError):
            aggregator_fresh.remove_nodes([ghost])

    def test_set_rows_rekeys_local_summaries(self):
        overlay = OverlayNetwork.build(8, base=4, leaf_size=2, seed=1)
        aggregator = DecentralizedAggregator.for_overlay(overlay, bins=8)
        aggregator.load_local(synthetic_channels)
        rows = aggregator.rows
        locals_before = {
            node_id: state.summaries[rows]
            for node_id, state in aggregator.states.items()
        }
        aggregator.set_rows(rows + 2)
        for node_id, state in aggregator.states.items():
            assert state.rows == rows + 2
            assert state.summaries == {rows + 2: locals_before[node_id]}


class TestSystemChurnEquivalence:
    """The full system's live aggregator stays rebuild-equivalent."""

    @pytest.mark.parametrize("seed", [11, 12])
    def test_system_aggregator_matches_rebuild_after_churn(
        self, seed, fast_config
    ):
        farm = WebServerFarm(seed=seed)
        system = CoronaSystem(
            n_nodes=32, config=fast_config, fetcher=farm, seed=seed
        )
        client = 0
        for rank in range(8):
            url = f"http://eq{rank}.example/rss"
            farm.host(url, update_interval=120.0, target_bytes=500)
            for _ in range(6):
                system.subscribe(url, f"client-{client}", now=0.0)
                client += 1
        rng = random.Random(seed)
        now = 0.0
        for step in range(6):
            now += 60.0
            system.crash_nodes(rng.randint(1, 2), now=now, rng=rng)
            system.join_nodes(rng.randint(1, 2), now=now)
            if step % 2 == 1:
                system.run_maintenance_round(now)
        def local_channels(node_id):
            return system.nodes[node_id].local_factors()

        assert_equivalent(system.aggregator, system.overlay, local_channels)

    def test_delta_system_matches_rebuild_after_churn(self, fast_config):
        """The delta-round system aggregator is also rebuild-equivalent."""
        farm = WebServerFarm(seed=21)
        system = CoronaSystem(
            n_nodes=24,
            config=fast_config,
            fetcher=farm,
            seed=21,
            delta_rounds=True,
        )
        for rank in range(5):
            url = f"http://deq{rank}.example/rss"
            farm.host(url, update_interval=120.0, target_bytes=500)
            for client in range(4):
                system.subscribe(url, f"d{rank}-{client}", now=0.0)
        rng = random.Random(21)
        now = 0.0
        for _ in range(4):
            now += 60.0
            system.crash_nodes(1, now=now, rng=rng)
            system.join_nodes(1, now=now)
            system.run_maintenance_round(now)

        def local_channels(node_id):
            return system.nodes[node_id].local_factors()

        assert_equivalent(system.aggregator, system.overlay, local_channels)

    def test_rebuild_mode_system_behaves(self, fast_config):
        """The retained rebuild path still transfers state correctly."""
        farm = WebServerFarm(seed=2)
        system = CoronaSystem(
            n_nodes=24,
            config=fast_config,
            fetcher=farm,
            seed=2,
            incremental_churn=False,
        )
        for rank in range(6):
            url = f"http://legacy{rank}.example/rss"
            farm.host(url, update_interval=120.0, target_bytes=500)
            for client in range(5):
                system.subscribe(url, f"c{rank}-{client}", now=0.0)
        total = 30
        system.crash_nodes(4, now=10.0, target="managers")
        system.join_nodes(3, now=20.0)
        registered = sum(
            system.nodes[manager].registry.count(url)
            for url, manager in system.managers.items()
        )
        assert registered == total
        assert set(system.aggregator.states) == set(system.nodes)


class TestDeltaEagerSystemEquivalence:
    """delta_rounds=True vs the eager reference: bit-identical metrics.

    Two complete systems — one with delta rounds, one eager — are
    driven through the same seeded interleaving of joins, crashes,
    flash-crowd subscription waves, unsubscribes, polls (real update
    detections moving the interval estimators) and maintenance rounds.
    Every observable — aggregation states, channel levels, protocol
    counters and the value-change work counters — must agree exactly;
    the work-counter match is also the proof that the dirty-local
    marking in :class:`CoronaSystem` is complete (a missed mark shows
    up as the eager side counting a change the delta side skipped).
    """

    def build(self, delta, seed, fast_config):
        farm = WebServerFarm(seed=seed)
        system = CoronaSystem(
            n_nodes=32,
            config=fast_config,
            fetcher=farm,
            seed=seed,
            delta_rounds=delta,
        )
        for rank in range(8):
            url = f"http://mix{rank}.example/rss"
            farm.host(url, update_interval=90.0, target_bytes=400)
        return system, farm

    def drive(self, system, farm, seed, horizon_steps=18):
        rng = random.Random(seed)
        client = 0
        now = 0.0
        for url_rank in range(8):
            url = f"http://mix{url_rank}.example/rss"
            for _ in range(4):
                system.subscribe(url, f"c{client}", now=0.0)
                client += 1
        for step in range(horizon_steps):
            now += 60.0
            action = rng.random()
            if action < 0.2 and len(system.nodes) > 6:
                system.crash_nodes(
                    rng.randint(1, 2), now=now, rng=rng,
                    target=rng.choice(["any", "managers"]),
                )
            elif action < 0.4:
                system.join_nodes(rng.randint(1, 2), now=now)
            elif action < 0.6:
                # Flash crowd: a burst of subscriptions on one channel.
                url = f"http://mix{rng.randrange(8)}.example/rss"
                for _ in range(rng.randint(5, 15)):
                    system.subscribe(url, f"crowd-{client}", now=now)
                    client += 1
            elif action < 0.7:
                url = f"http://mix{rng.randrange(8)}.example/rss"
                system.unsubscribe(url, f"c{rng.randrange(max(client, 1))}")
            farm.advance_to(now)
            system.poll_due(now)
            if step % 2 == 1:
                system.run_maintenance_round(now)
        return system

    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_metrics_bit_identical(self, seed, fast_config):
        delta_sys, delta_farm = self.build(True, seed, fast_config)
        eager_sys, eager_farm = self.build(False, seed, fast_config)
        self.drive(delta_sys, delta_farm, seed)
        self.drive(eager_sys, eager_farm, seed)
        assert delta_sys.counters == eager_sys.counters
        assert delta_sys.aggregator.states == eager_sys.aggregator.states
        assert (
            delta_sys.aggregator.work.as_dict()
            == eager_sys.aggregator.work.as_dict()
        )
        assert set(delta_sys.managers) == set(eager_sys.managers)
        for url in delta_sys.managers:
            assert delta_sys.channel_level(url) == eager_sys.channel_level(
                url
            ), url
        assert delta_farm.total_polls == eager_farm.total_polls
        assert delta_farm.total_updates == eager_farm.total_updates
