"""The Corona IM gateway: command handling and rate limiting."""

import pytest

from repro.im.gateway import ImGateway
from repro.im.messages import Notification
from repro.im.service import SimIMService


@pytest.fixture()
def gateway() -> ImGateway:
    service = SimIMService()
    gw = ImGateway(service=service, rate_limit=2.0, burst=2.0)
    service.register("alice")
    service.connect("alice")
    return gw


def note(version: int) -> Notification:
    return Notification(
        url="http://x/f", version=version, summary=f"update {version}",
        detected_at=0.0,
    )


class TestCommands:
    def test_valid_command_returned(self, gateway):
        command = gateway.receive_chat("alice", "subscribe http://x/f")
        assert command is not None
        assert command.action == "subscribe"

    def test_junk_gets_help_reply(self, gateway):
        command = gateway.receive_chat("alice", "wibble wobble")
        assert command is None
        inbox = gateway.service.inbox("alice")
        assert inbox and "commands" in inbox[-1].body

    def test_help_request(self, gateway):
        assert gateway.receive_chat("alice", "help") is None
        assert gateway.service.inbox("alice")


class TestRateLimiting:
    def test_burst_allowed_then_throttled(self, gateway):
        sent = [gateway.notify("alice", note(v), now=0.0) for v in range(5)]
        assert sent[:2] == [True, True]  # burst capacity
        assert sent[2:] == [False, False, False]
        assert gateway.pending("alice") == 3

    def test_queue_drains_at_rate(self, gateway):
        for version in range(5):
            gateway.notify("alice", note(version), now=0.0)
        # Token capacity (burst=2) caps how much one pump can release.
        released = gateway.pump(now=1.5)
        assert released == 2
        assert gateway.pending("alice") == 1
        released = gateway.pump(now=3.0)
        assert released == 1
        assert gateway.pending("alice") == 0

    def test_ordering_preserved(self, gateway):
        for version in range(5):
            gateway.notify("alice", note(version), now=0.0)
        gateway.pump(now=10.0)
        bodies = [m.body for m in gateway.service.inbox("alice")]
        versions = [int(b.split("v")[1].split(" ")[0]) for b in bodies]
        assert versions == sorted(versions)

    def test_no_bursts_after_queueing_starts(self, gateway):
        """Once a client has a queue, new messages join it rather than
        jumping ahead ('avoids sending updates in bursts', §4)."""
        for version in range(4):
            gateway.notify("alice", note(version), now=0.0)
        assert gateway.notify("alice", note(99), now=100.0) is False
        gateway.pump(now=100.0)
        gateway.pump(now=101.0)
        bodies = [m.body for m in gateway.service.inbox("alice")]
        assert "update 99" in bodies[-1]

    def test_counters(self, gateway):
        for version in range(4):
            gateway.notify("alice", note(version), now=0.0)
        gateway.pump(now=30.0)
        assert gateway.sent_count == 4
        assert gateway.throttled_count == 2
