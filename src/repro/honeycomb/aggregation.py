"""Decentralized aggregation of tradeoff clusters over the overlay.

Honeycomb nodes periodically exchange cluster summaries with the
contacts in their routing tables (paper §3.2).  The exchange exploits
the same prefix structure Corona's wedges are built on: the channels
*owned* by nodes sharing ``r`` prefix digits with node X form a
shrinking family of sets

    S_X(K) ⊆ S_X(K-1) ⊆ ... ⊆ S_X(0) = all channels,

and each can be computed recursively:

    S_X(r) = S_X(r+1)  ∪  ⋃_j  S_{contact(r, j)}(r+1)

where ``contact(r, j)`` is X's routing-table entry at row ``r`` column
``j``.  Because routing-row contacts cover *disjoint* identifier
regions, every channel is counted exactly once — the aggregation is a
partition, not a gossip average.  One exchange round extends each
node's horizon by one prefix digit; after ``K = log_b N`` rounds every
node holds a summary of all channels in the system, with memory and
bandwidth bounded by ``bins × levels × routing-table size``.

The simulators drive this with explicit rounds so that the propagation
delay of global knowledge — and the transient mis-allocation it causes
(paper Figure 3's brief overshoot) — is reproduced rather than assumed
away.

Delta-driven rounds
-------------------
The recursion above makes each radius a pure function of the previous
round's radius-``r+1`` summaries, so a converged system recomputes the
same values forever.  The default ``delta_rounds`` mode therefore
stamps every per-radius summary with the epoch (round clock) at which
its *value* last changed, and a node rebuilds radius ``r`` only when
its own radius-``r+1`` epoch or some row-``r`` contact's radius-``r+1``
epoch advanced since the node last built ``r`` (or the radius is
missing outright — after churn trimmed it).  Rebuilds read the
previous round's values and are committed after the sweep (a double
buffer), preserving the one-maintenance-interval staleness of
piggy-backed aggregation data bit for bit: a skipped radius is exactly
the value the eager recomputation would have produced, and dirt still
propagates one prefix digit per round.  A fully converged round does
no summary work at all.  ``delta_rounds=False`` retains the original
recompute-everything sweep as the benchmark reference
(``benchmarks/test_round_delta.py`` gates the speedup).

Both modes maintain the same :class:`AggregationWork` counters, which
deliberately count *value changes* rather than raw recomputation —
the two modes must report identical numbers on identical runs (the
delta-round equivalence suite asserts this), which makes the counters
a deterministic CI gate for "work the protocol caused" that is
independent of how cleverly the round is executed.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.honeycomb.clusters import ClusterSummary
from repro.obs.metrics import CounterStruct
from repro.overlay.nodeid import NodeId
from repro.overlay.routing import RoutingTable


class AggregationWork(CounterStruct):
    """Deterministic value-change counters for aggregation rounds.

    ``summaries_rebuilt`` counts per-radius (and local) summaries whose
    committed value actually changed; ``cluster_merges`` counts the
    contact contributions folded into those changed builds;
    ``nodes_dirtied`` accumulates, per round (and per local-load pass),
    the number of nodes with at least one changed summary.  All three
    are identical between ``delta_rounds`` and the eager reference on
    the same run — they measure change flowing through the system, not
    instructions executed — so scenario baselines can gate on them
    exactly while wall-clock timings stay report-only.

    Backed by ``repro.obs`` counter cells; the non-incremental churn
    path rebuilds its aggregator (and with it this struct) per
    membership event, and re-registration replaces the prior series to
    keep that reset visible in the registry too.
    """

    SERIES = (
        (
            "summaries_rebuilt",
            "work_summaries_rebuilt",
            "per-radius summaries whose committed value changed",
        ),
        (
            "cluster_merges",
            "work_cluster_merges",
            "contact contributions folded into changed summary builds",
        ),
        (
            "nodes_dirtied",
            "work_nodes_dirtied",
            "nodes with at least one changed summary, per round",
        ),
    )


@dataclass
class AggregationState:
    """Per-node aggregation memory: one summary per prefix radius.

    ``summaries[r]`` approximates the channels owned by nodes sharing
    ``r`` prefix digits with this node; radius ``rows`` (= digits) is
    the node's own channels, radius 0 is the whole system.

    The trailing fields are delta-round bookkeeping (excluded from
    equality, which compares protocol state only): ``changed[r]`` is
    the round clock at which the radius-``r`` summary pair last changed
    value (or was dropped by churn trimming), ``built[r]`` the clock at
    which this node last rebuilt radius ``r``, and ``complete[r]``
    whether that rebuild saw contributions from every row-``r``
    contact.
    """

    node_id: NodeId
    rows: int
    bins: int = 16
    summaries: dict[int, ClusterSummary] = field(default_factory=dict)
    #: Like ``summaries`` but excluding this node's own channels; the
    #: local optimizer combines fine-grained own-channel data with
    #: ``remote[0]`` so nothing is counted twice.
    remote: dict[int, ClusterSummary] = field(default_factory=dict)
    changed: dict[int, int] = field(default_factory=dict, compare=False)
    built: dict[int, int] = field(default_factory=dict, compare=False)
    complete: dict[int, bool] = field(default_factory=dict, compare=False)

    def local_summary(self) -> ClusterSummary:
        """The radius-``rows`` summary: this node's own channels."""
        return self.summaries.setdefault(
            self.rows, ClusterSummary(bins=self.bins)
        )

    def set_local(self, summary: ClusterSummary) -> None:
        """Replace the own-channel summary (rebuilt on factor changes)."""
        self.summaries[self.rows] = summary
        self.remote[self.rows] = ClusterSummary(bins=self.bins)

    def global_summary(self) -> ClusterSummary:
        """Best current approximation of the whole system's channels."""
        return self.summaries.get(0, self.best_summary())

    def best_summary(self) -> ClusterSummary:
        """The widest-radius summary available so far."""
        for radius in sorted(self.summaries):
            return self.summaries[radius]
        return ClusterSummary(bins=self.bins)

    def best_remote(self) -> ClusterSummary:
        """Widest remote-channel summary (own channels excluded)."""
        for radius in sorted(self.remote):
            return self.remote[radius]
        return ClusterSummary(bins=self.bins)

    def horizon(self) -> int:
        """Smallest radius (widest coverage) currently known."""
        return min(self.summaries, default=self.rows)


class DecentralizedAggregator:
    """Runs aggregation rounds across a population of nodes.

    ``local_channels`` supplies, per node, the factors of the channels
    that node currently owns; :meth:`load_local` rebuilds
    radius-``rows`` summaries from it (all nodes, or just the ones
    marked dirty via :meth:`mark_local_dirty` — see
    :meth:`load_dirty_locals`) and :meth:`run_round` extends horizons
    one digit.

    Churn is handled **incrementally** (paper §3.3): a joining or
    failing node is spliced into/out of ``states`` in place via
    :meth:`add_nodes`/:meth:`remove_nodes`, and survivors keep every
    summary whose prefix region the event did not touch.  Their
    horizons shrink only where membership actually changed — matching
    the protocol's one-interval staleness — and because every round
    recomputes each stale radius from the previous round's values, the
    spliced state reconverges to exactly what a from-scratch rebuild
    would compute within ``rows`` rounds (the churn-equivalence test
    suite asserts this bit for bit).  ``tables`` should be a live view
    (see :meth:`repro.overlay.network.OverlayNetwork.routing_tables`)
    so membership changes never require re-materializing it; with
    ``delta_rounds`` the tables must only change through
    :meth:`add_nodes`/:meth:`remove_nodes` events (the epoch stamps
    learn about contact changes from the horizon trimming those
    perform).
    """

    def __init__(
        self,
        tables: Mapping[NodeId, RoutingTable],
        rows: int,
        bins: int = 16,
        base: int | None = None,
        delta_rounds: bool = True,
        registry=None,
    ) -> None:
        self.tables = tables
        self.rows = rows
        self.bins = bins
        if base is None:
            base = next(
                (table.base for table in tables.values()), 16
            )
        self.base = base
        self.delta_rounds = delta_rounds
        self.states: dict[NodeId, AggregationState] = {
            node_id: AggregationState(node_id=node_id, rows=rows, bins=bins)
            for node_id in tables
        }
        self.work = AggregationWork(registry)
        #: Monotone round clock the delta epoch stamps are drawn from.
        self._clock = 0
        #: Nodes whose owned-channel factors changed since their local
        #: summary was last rebuilt.  Everyone starts dirty so the
        #: first load covers the whole population.
        self._dirty_local: set[NodeId] = set(self.states)
        #: True when the previous round committed nothing and rebuilt
        #: nothing — the next delta round is then a guaranteed no-op.
        self._quiescent = False
        #: Scratch summaries recycled across delta rebuilds whose
        #: result turned out unchanged (bounded pool).
        self._scratch: list[ClusterSummary] = []

    @classmethod
    def for_overlay(
        cls,
        overlay,
        bins: int = 16,
        delta_rounds: bool = True,
        registry=None,
    ) -> "DecentralizedAggregator":
        """Build over an overlay's live routing-table view."""
        return cls(
            tables=overlay.routing_tables(),
            rows=overlay.aggregation_rows(),
            bins=bins,
            base=overlay.base,
            delta_rounds=delta_rounds,
            registry=registry,
        )

    # ------------------------------------------------------------------
    # incremental churn (§3.3)
    # ------------------------------------------------------------------
    def add_nodes(
        self, node_ids: Iterable[NodeId], rows: int | None = None
    ) -> None:
        """Splice a wave of joined nodes into the aggregation state.

        Each newcomer starts with empty summaries (its horizon grows
        one digit per round, like any node's); each survivor drops only
        the summaries whose prefix region now contains a newcomer —
        those undercount until the next rounds repair them, and serving
        them would misreport the region.  ``rows`` re-keys the state
        when the join deepened the overlay's collision depth (pass the
        overlay's current ``aggregation_rows()``).
        """
        joined = list(node_ids)
        for node_id in joined:
            if node_id in self.states:
                raise ValueError(f"node {node_id!r} already aggregated")
            self.states[node_id] = AggregationState(
                node_id=node_id, rows=self.rows, bins=self.bins
            )
            self._dirty_local.add(node_id)
        self._quiescent = False
        self._trim_changed_regions(joined, skip=set(joined))
        if rows is not None:
            self.set_rows(rows)

    def remove_nodes(
        self, node_ids: Iterable[NodeId], rows: int | None = None
    ) -> None:
        """Splice a wave of failed nodes out of the aggregation state.

        Survivors keep every summary of an untouched prefix region;
        radii whose region contained a victim are dropped (they count
        channels the victims' successors now re-announce).  One wave ⇒
        one repair pass, however many nodes failed.
        """
        victims = list(node_ids)
        for node_id in victims:
            if node_id not in self.states:
                raise KeyError(f"node {node_id!r} not aggregated")
        for node_id in victims:
            del self.states[node_id]
            self._dirty_local.discard(node_id)
        self._quiescent = False
        self._trim_changed_regions(victims, skip=frozenset())
        if rows is not None:
            self.set_rows(rows)

    def _trim_changed_regions(
        self, changed: list[NodeId], skip: frozenset[NodeId] | set[NodeId]
    ) -> None:
        """Shrink survivors' horizons only where membership changed.

        A survivor's radius-``r`` summary covers the nodes sharing
        ``r`` prefix digits with it; a membership event at shared
        prefix ``p`` therefore staled exactly the radii ``r <= p``.
        The local (radius-``rows``) summary is never dropped — it is
        rebuilt from owned channels when the owner's factors change.
        Every dropped radius is epoch-stamped so delta rounds at the
        dependents (radius ``r-1`` here and at nodes holding this one
        as a row-``r-1`` contact) rebuild from the trimmed state.
        """
        if not changed:
            return
        for state in self.states.values():
            if state.node_id in skip:
                continue
            horizon = min(state.summaries, default=state.rows)
            if horizon >= state.rows:
                continue  # only the local summary left — nothing stale
            deepest = max(
                state.node_id.shared_prefix_len(node_id, self.base)
                for node_id in changed
            )
            for radius in range(horizon, min(deepest, state.rows - 1) + 1):
                dropped = state.summaries.pop(radius, None)
                state.remote.pop(radius, None)
                state.built.pop(radius, None)
                state.complete.pop(radius, None)
                if dropped is not None:
                    self._stamp(state, radius)

    def set_rows(self, rows: int) -> None:
        """Adjust the aggregation depth after a collision-depth change.

        Rare: only when churn changes the deepest shared prefix in the
        overlay.  Local summaries move to the new local radius; wider
        radii are dropped (their meaning shifted) and regrow one digit
        per round.
        """
        if rows == self.rows:
            return
        self._quiescent = False
        for state in self.states.values():
            local = state.summaries.get(state.rows)
            local_remote = state.remote.get(state.rows)
            state.summaries = {} if local is None else {rows: local}
            state.remote = {} if local_remote is None else {rows: local_remote}
            state.rows = rows
            # All other radii are gone (absent radii always rebuild),
            # so only the re-keyed local needs a fresh epoch stamp for
            # the dependents' triggers; stale build records go with it.
            state.changed = {rows: self._clock}
            state.built = {}
            state.complete = {}
        self.rows = rows

    def _stamp(self, state: AggregationState, radius: int) -> None:
        """Record a value change of ``radius`` at the current clock."""
        state.changed[radius] = self._clock
        self._quiescent = False

    # ------------------------------------------------------------------
    # local summaries
    # ------------------------------------------------------------------
    def mark_local_dirty(self, node_id: NodeId) -> None:
        """Flag a node whose owned-channel factors changed.

        The drivers call this on every event that can move a factor a
        local summary is built from — subscribe/unsubscribe, channel
        re-homes, detected updates (interval/size estimators), level
        steps — so :meth:`load_dirty_locals` touches only those nodes.
        """
        if node_id in self.states:
            self._dirty_local.add(node_id)

    def load_local(
        self,
        local_channels: Callable[[NodeId], list],
        node_ids: Iterable[NodeId] | None = None,
    ) -> None:
        """Rebuild own-channel summaries (all nodes, or ``node_ids``).

        ``local_channels(node)`` yields ``(factors, is_orphan)`` or
        ``(factors, is_orphan, binning_ratio)`` tuples for the channels
        the node owns; the optional ratio is the scheme-specific f/g
        metric channels are clustered by.  A rebuilt summary equal in
        value to the stored one is discarded (no epoch advance), which
        is what lets delta rounds quiesce even though the eager driver
        reloads every node every round.
        """
        if node_ids is None:
            targets = list(self.states)
            self._dirty_local.clear()
        else:
            targets = [nid for nid in node_ids if nid in self.states]
            self._dirty_local.difference_update(targets)
        dirtied = 0
        for node_id in targets:
            state = self.states[node_id]
            summary = ClusterSummary(bins=self.bins)
            for entry in local_channels(node_id):
                factors, orphan = entry[0], entry[1]
                ratio = entry[2] if len(entry) > 2 else None
                summary.add_channel(factors, orphan=orphan, ratio=ratio)
            if self._install_local(state, summary):
                dirtied += 1
        self.work.nodes_dirtied += dirtied

    def load_dirty_locals(
        self, local_channels: Callable[[NodeId], list]
    ) -> None:
        """Rebuild locals only for nodes marked dirty since last load."""
        if not self._dirty_local:
            return
        order = sorted(self._dirty_local, key=lambda node_id: node_id.value)
        self.load_local(local_channels, node_ids=order)

    def refresh_locals(
        self, local_channels: Callable[[NodeId], list]
    ) -> None:
        """Reload local summaries the way the active round mode needs.

        One dispatch point for every driver: delta rounds touch only
        the dirty set, the eager reference reloads the population.
        """
        if self.delta_rounds:
            self.load_dirty_locals(local_channels)
        else:
            self.load_local(local_channels)

    def _install_local(
        self, state: AggregationState, summary: ClusterSummary
    ) -> bool:
        """Commit a rebuilt local summary; returns True if it changed."""
        changed = state.summaries.get(state.rows) != summary
        if changed:
            state.set_local(summary)
            self.work.summaries_rebuilt += 1
            self._stamp(state, state.rows)
        elif state.rows not in state.remote:
            state.remote[state.rows] = ClusterSummary(bins=self.bins)
        return changed

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """One aggregation round: every node widens its horizon by one.

        For radius ``r`` (from ``rows - 1`` down to 0) a node needs its
        own radius-``r+1`` summary plus the radius-``r+1`` summaries of
        its row-``r`` contacts.  We compute one new radius per round
        from the *previous* round's state, which models the one
        maintenance-interval staleness of piggy-backed aggregation
        data.  ``delta_rounds`` skips every radius whose inputs did not
        change since the node last built it (see module docstring); the
        eager sweep recomputes everything.
        """
        if self.delta_rounds:
            self._run_round_delta()
        else:
            self._run_round_eager()

    def _run_round_eager(self) -> None:
        """The original recompute-everything sweep (reference path)."""
        self._clock += 1
        snapshot: dict[NodeId, dict[int, ClusterSummary]] = {
            node_id: dict(state.summaries)
            for node_id, state in self.states.items()
        }
        remote_snapshot: dict[NodeId, dict[int, ClusterSummary]] = {
            node_id: dict(state.remote)
            for node_id, state in self.states.items()
        }
        work = self.work
        dirtied = 0
        for node_id, state in self.states.items():
            table = self.tables[node_id]
            known = snapshot[node_id]
            node_changed = False
            for radius in range(self.rows - 1, -1, -1):
                inner = known.get(radius + 1)
                if inner is None:
                    break  # cannot widen past a missing inner radius
                inner_remote = remote_snapshot[node_id].get(
                    radius + 1, ClusterSummary(bins=self.bins)
                )
                combined = inner.copy()
                combined_remote = inner_remote.copy()
                complete = True
                merges = 0
                for contact in table.row(radius).values():
                    contribution = snapshot.get(contact, {}).get(radius + 1)
                    if contribution is None:
                        complete = False
                        continue
                    combined.merge(contribution)
                    combined_remote.merge(contribution)
                    merges += 1
                if (
                    state.summaries.get(radius) != combined
                    or state.remote.get(radius) != combined_remote
                ):
                    work.summaries_rebuilt += 1
                    work.cluster_merges += merges
                    node_changed = True
                state.summaries[radius] = combined
                state.remote[radius] = combined_remote
                if not complete:
                    # Partial coverage still improves the estimate, but
                    # do not build wider radii on incomplete data this
                    # round; they would systematically undercount.
                    break
            if node_changed:
                dirtied += 1
        work.nodes_dirtied += dirtied

    def _run_round_delta(self) -> None:
        """Epoch-driven sweep: rebuild only radii whose inputs moved.

        Walks every node's radii exactly like the eager sweep (same
        break conditions, same contribution order, reading only
        pre-round values) but rebuilds a radius only when its epoch
        trigger fires; rebuilt pairs are committed after the sweep so
        within-round reads stay double-buffered.  A rebuild whose value
        did not change keeps the stored objects and advances no epoch,
        so change waves die out exactly as fast as the values converge.
        """
        self._clock += 1
        if self._quiescent:
            return
        clock = self._clock
        states = self.states
        get_state = states.get
        empty = ClusterSummary(bins=self.bins)
        commits: list[
            tuple[AggregationState, int, ClusterSummary, ClusterSummary, int]
        ] = []
        built_any = False
        for node_id, state in states.items():
            table = self.tables[node_id]
            summaries = state.summaries
            remote = state.remote
            changed_map = state.changed
            built_map = state.built
            for radius in range(self.rows - 1, -1, -1):
                inner = summaries.get(radius + 1)
                if inner is None:
                    break  # cannot widen past a missing inner radius
                row = table.row(radius)
                built_at = built_map.get(radius, -1)
                need = (
                    radius not in summaries
                    or changed_map.get(radius + 1, -1) >= built_at
                )
                if not need:
                    for contact in row.values():
                        contact_state = get_state(contact)
                        if (
                            contact_state is not None
                            and contact_state.changed.get(radius + 1, -1)
                            >= built_at
                        ):
                            need = True
                            break
                if not need:
                    if not state.complete.get(radius, True):
                        break  # the eager sweep would stop here too
                    continue
                built_any = True
                inner_remote = remote.get(radius + 1)
                combined = self._borrow(inner)
                combined_remote = self._borrow(
                    empty if inner_remote is None else inner_remote
                )
                complete = True
                merges = 0
                for contact in row.values():
                    contact_state = get_state(contact)
                    contribution = (
                        None
                        if contact_state is None
                        else contact_state.summaries.get(radius + 1)
                    )
                    if contribution is None:
                        complete = False
                        continue
                    combined.merge(contribution)
                    combined_remote.merge(contribution)
                    merges += 1
                built_map[radius] = clock
                state.complete[radius] = complete
                commits.append(
                    (state, radius, combined, combined_remote, merges)
                )
                if not complete:
                    break
        work = self.work
        dirtied: set[NodeId] = set()
        for state, radius, combined, combined_remote, merges in commits:
            if (
                state.summaries.get(radius) == combined
                and state.remote.get(radius) == combined_remote
            ):
                # Value-identical rebuild: keep the stored objects, no
                # epoch advance, recycle the buffers.
                if len(self._scratch) < 32:
                    self._scratch.append(combined)
                    self._scratch.append(combined_remote)
                continue
            state.summaries[radius] = combined
            state.remote[radius] = combined_remote
            self._stamp(state, radius)
            work.summaries_rebuilt += 1
            work.cluster_merges += merges
            dirtied.add(state.node_id)
        work.nodes_dirtied += len(dirtied)
        if not built_any:
            # Nothing was even triggered: with no new epochs the next
            # round cannot trigger anything either.
            self._quiescent = True

    def _borrow(self, source: ClusterSummary) -> ClusterSummary:
        """A copy of ``source``, recycling a pooled scratch summary."""
        if self._scratch:
            return self._scratch.pop().replace_with(source)
        return source.copy()

    def run_to_convergence(self) -> int:
        """Run rounds until every node covers radius 0; return rounds."""
        rounds = 0
        while any(state.horizon() > 0 for state in self.states.values()):
            self.run_round()
            rounds += 1
            if rounds > self.rows * 4 + 8:
                break  # safety: sparse tables may never cover some region
        return rounds

    # ------------------------------------------------------------------
    def summary_at(self, node_id: NodeId) -> ClusterSummary:
        """The widest summary node ``node_id`` currently holds."""
        return self.states[node_id].best_summary()

    def horizon_at(self, node_id: NodeId) -> int:
        """How far node ``node_id`` currently sees (0 = whole system)."""
        return self.states[node_id].horizon()
