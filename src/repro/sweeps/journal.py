"""Crash-resumable sweep journaling (append-only JSONL).

A :class:`SweepJournal` records every *terminal* task result the farm
produces — one JSON line per task, flushed as soon as it is written —
so a sweep killed mid-run (SIGTERM, OOM, power loss) can be resumed
without redoing finished work: ``repro sweep run --resume`` (or
``repro sweep resume``) loads the journal, skips every journaled
task, and re-runs only the rest.  Because tasks are deterministic and
artifacts merge in enumeration order, the resumed run's artifacts are
byte-identical to an uninterrupted run (``tests/sweeps/test_resume.py``
pins it).

File format::

    {"journal": "repro-sweep", "version": 1, "sweep": ..., ...}
    {"key": "...", "status": "ok", ..., "payload": {...}}
    {"key": "...", "status": "failed", ..., "error": "..."}

The writer appends and flushes one line per result, so the only
damage a crash can inflict is a truncated *final* line.  The loader
tolerates exactly that — the partial tail is dropped (with a warning)
and rewriting resumes from the last clean byte.  Anything else — a
corrupt interior line, a header for a different sweep, a mismatched
``check_invariants`` flag — raises :class:`JournalError` loudly:
resuming against the wrong journal must never silently mix runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.obs import get_logger
from repro.sweeps.farm import TaskResult
from repro.sweeps.spec import SweepTask

_log = get_logger(__name__)

__all__ = [
    "JOURNAL_NAME",
    "JournalError",
    "JournalState",
    "SweepJournal",
    "load_journal",
]

#: File name of the journal inside a sweep's ``--out`` directory.
JOURNAL_NAME = "journal.jsonl"

_MAGIC = "repro-sweep"
_VERSION = 1


class JournalError(ValueError):
    """The journal cannot be trusted for a resume (see module doc)."""


def _result_record(result: TaskResult) -> dict:
    task = result.task
    return {
        "key": task.key,
        "scenario": task.scenario,
        "variant": task.variant,
        "seed": task.seed,
        "status": result.status,
        "attempts": result.attempts,
        "wall_seconds": result.wall_seconds,
        "alloc_blocks": result.alloc_blocks,
        "error": result.error,
        "payload": result.payload,
        "violations": result.violations,
        "report": result.report,
    }


def _result_from_record(record: dict) -> TaskResult:
    task = SweepTask(
        scenario=record["scenario"],
        variant=record["variant"],
        seed=record["seed"],
    )
    return TaskResult(
        task=task,
        status=record["status"],
        attempts=record["attempts"],
        wall_seconds=record["wall_seconds"],
        alloc_blocks=record["alloc_blocks"],
        error=record["error"],
        payload=record["payload"],
        violations=record.get("violations"),
        # .get(): journals written before per-task reports existed
        # load cleanly (the field simply resumes as absent).
        report=record.get("report"),
    )


@dataclass
class JournalState:
    """What a journal file held: header facts + replayable results."""

    sweep: str
    check_invariants: bool
    results: dict[str, TaskResult]
    #: Byte offset of the last *complete* line — a truncated tail (if
    #: any) lives past it and is overwritten on resume.
    clean_size: int


def load_journal(path: str | os.PathLike) -> JournalState:
    """Parse a journal, tolerating only a truncated final line."""
    path = Path(path)
    raw = path.read_bytes()
    results: dict[str, TaskResult] = {}
    header: dict | None = None
    offset = 0
    clean_size = 0
    line_no = 0
    while offset < len(raw):
        end = raw.find(b"\n", offset)
        if end < 0:  # no newline: an interrupted append — drop it
            _log.warning(
                "journal %s: dropping truncated final line (%d bytes)",
                path,
                len(raw) - offset,
            )
            break
        line = raw[offset:end].strip()
        offset = end + 1
        line_no += 1
        if not line:
            clean_size = offset
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise JournalError(
                f"journal {path}: corrupt record at line {line_no}: "
                f"{error}"
            ) from None
        if header is None:
            if (
                not isinstance(record, dict)
                or record.get("journal") != _MAGIC
                or record.get("version") != _VERSION
            ):
                raise JournalError(
                    f"journal {path}: unrecognised header at line "
                    f"{line_no}"
                )
            header = record
        else:
            try:
                result = _result_from_record(record)
            except (KeyError, TypeError) as error:
                raise JournalError(
                    f"journal {path}: malformed result at line "
                    f"{line_no}: {error!r}"
                ) from None
            results[result.task.key] = result
        clean_size = offset
    if header is None:
        raise JournalError(f"journal {path}: no header line")
    return JournalState(
        sweep=header.get("sweep", ""),
        check_invariants=bool(header.get("check_invariants", False)),
        results=results,
        clean_size=clean_size,
    )


class SweepJournal:
    """Append-only writer over a journal file (flush per line)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._handle = None

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        sweep: str,
        check_invariants: bool = False,
    ) -> SweepJournal:
        """Start a fresh journal, truncating any previous file."""
        journal = cls(path)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._handle = open(journal.path, "w", encoding="utf-8")
        journal._write_line(
            {
                "journal": _MAGIC,
                "version": _VERSION,
                "sweep": sweep,
                "check_invariants": check_invariants,
            }
        )
        return journal

    @classmethod
    def resume(
        cls,
        path: str | os.PathLike,
        sweep: str,
        check_invariants: bool = False,
    ) -> tuple[SweepJournal, JournalState]:
        """Load ``path`` for a resume and reopen it for appending.

        Validates that the journal belongs to ``sweep`` under the same
        ``check_invariants`` setting, truncates away any partial tail,
        and returns the journal (positioned to append) plus the loaded
        state whose ``results`` the farm should skip.
        """
        state = load_journal(path)
        if state.sweep != sweep:
            raise JournalError(
                f"journal {path} belongs to sweep {state.sweep!r}, "
                f"not {sweep!r}"
            )
        if state.check_invariants != check_invariants:
            raise JournalError(
                f"journal {path} was written with check_invariants="
                f"{state.check_invariants}; rerun with the same flag "
                "or start fresh without --resume"
            )
        journal = cls(path)
        journal._handle = open(journal.path, "r+", encoding="utf-8")
        journal._handle.truncate(state.clean_size)
        journal._handle.seek(state.clean_size)
        return journal, state

    # ------------------------------------------------------------------
    def _write_line(self, record: dict) -> None:
        assert self._handle is not None
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        # Flush every line: the journal's whole point is surviving a
        # kill, so a result is durable the moment append() returns.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, result: TaskResult) -> None:
        """Record one terminal task result durably."""
        self._write_line(_result_record(result))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> SweepJournal:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
