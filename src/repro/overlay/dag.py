"""Dissemination DAGs rooted at overlay nodes.

The routing table defines, from every node, a directed acyclic graph
that can reach any other node in ``log_b N`` hops (paper §3.1).  Corona
walks this DAG in two places:

* the *maintenance* protocol — a level-``i`` node instructs its
  row-``i-1`` routing contacts to start or stop polling a channel, so
  control decisions flow down the DAG one wedge refinement at a time
  (§3.3); and
* *update dissemination* — a node that detects an update forwards the
  diff along the DAG, restricted to the channel's wedge, reaching every
  polling node without duplicate delivery (§3.4).

The walk is the classic structured-overlay prefix flood: the root
forwards to every routing row ``>= level``; a node that received the
message via a row-``r`` contact forwards only to rows ``> r``.  Rows
partition the identifier space by prefix, so every node is reached at
most once, and restricting the starting row to the channel's polling
level confines the flood to exactly the level-``level`` wedge — all
nodes sharing ``level`` prefix digits with the channel (equivalently,
with the root, since the root is itself in the wedge).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Mapping

from repro.overlay.nodeid import NodeId
from repro.overlay.routing import RoutingTable


def dag_children(
    table: RoutingTable, channel: NodeId, start_row: int
) -> list[tuple[int, NodeId]]:
    """Forwarding targets for a wedge flood continuing at ``start_row``.

    Returns ``(row, contact)`` pairs for every routing contact in rows
    ``start_row`` and deeper that lies inside the channel's
    level-``start_row``-or-deeper wedge.  Contacts in row ``r`` share
    ``r`` digits with the table owner; when the owner is inside the
    wedge and ``r >= start_row`` they are inside it too, so the wedge
    check only guards against stale routing state.
    """
    children: list[tuple[int, NodeId]] = []
    for row in sorted(table._rows):
        if row < start_row:
            continue
        for contact in table._rows[row].values():
            if contact.shared_prefix_len(channel, table.base) >= start_row:
                children.append((row, contact))
    return children


def dissemination_tree(
    root: NodeId,
    tables: Mapping[NodeId, RoutingTable],
    channel: NodeId,
    level: int,
    base: int,
) -> dict[NodeId, tuple[NodeId, int]]:
    """Parent pointers and hop depths of the wedge flood from ``root``.

    Maps each reached node (excluding the root) to ``(parent, depth)``
    where ``parent`` is the node that forwarded to it and ``depth`` its
    hop count from the root.  This models the paper's diff
    dissemination "along the DAG rooted at it up to a depth equal to
    the polling level of the channel".
    """
    parents: dict[NodeId, tuple[NodeId, int]] = {}
    reached: set[NodeId] = {root}
    queue: deque[tuple[NodeId, int, int]] = deque([(root, level, 0)])
    while queue:
        node, start_row, depth = queue.popleft()
        table = tables.get(node)
        if table is None:
            continue
        for row in sorted(table._rows):
            if row < start_row:
                continue
            for child in table._rows[row].values():
                if child.shared_prefix_len(channel, base) < level:
                    continue
                if child in reached:
                    continue
                reached.add(child)
                parents[child] = (node, depth + 1)
                queue.append((child, row + 1, depth + 1))
    return parents


def dag_reach(
    root: NodeId,
    tables: Mapping[NodeId, RoutingTable],
    channel: NodeId,
    level: int,
    base: int,
) -> list[NodeId]:
    """All nodes the wedge flood reaches from ``root`` (root included)."""
    parents = dissemination_tree(root, tables, channel, level, base)
    return [root, *parents]


def walk_depths(
    root: NodeId,
    tables: Mapping[NodeId, RoutingTable],
    channel: NodeId,
    level: int,
    base: int,
) -> dict[NodeId, int]:
    """Hop count from ``root`` for every node the flood reaches."""
    parents = dissemination_tree(root, tables, channel, level, base)
    depths = {node: depth for node, (_, depth) in parents.items()}
    depths[root] = 0
    return depths


def fanout_visitor(
    root: NodeId,
    tables: Mapping[NodeId, RoutingTable],
    channel: NodeId,
    level: int,
    base: int,
    on_message: Callable[[NodeId, NodeId], None],
) -> int:
    """Walk the flood tree invoking ``on_message(src, dst)`` per hop.

    Returns the number of messages sent.  The simulators use this to
    charge network cost for each diff forwarded inside a wedge.
    """
    parents = dissemination_tree(root, tables, channel, level, base)
    for child, (parent, _) in parents.items():
        on_message(parent, child)
    return len(parents)
