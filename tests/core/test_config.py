"""Configuration validation."""

import pytest

from repro.core.config import SCHEME_NAMES, CoronaConfig


class TestValidation:
    def test_defaults_match_paper(self):
        config = CoronaConfig()
        assert config.polling_interval == 1800.0  # 30 min, §5.1
        assert config.maintenance_interval == 3600.0  # 1 h, §5.1
        assert config.base == 16  # §4
        assert config.tradeoff_bins == 16  # §4
        assert config.scheme == "lite"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"polling_interval": 0},
            {"maintenance_interval": -1},
            {"base": 1},
            {"tradeoff_bins": 0},
            {"replicas": 0},
            {"scheme": "turbo"},
            {"latency_target": 0},
            {"load_metric": "watts"},
            {"min_update_interval": 0},
            {"min_update_interval": 100.0, "max_update_interval": 10.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CoronaConfig(**kwargs)

    def test_all_schemes_constructible(self):
        for scheme in SCHEME_NAMES:
            assert CoronaConfig(scheme=scheme).scheme == scheme

    def test_with_scheme_copies(self):
        base = CoronaConfig()
        fast = base.with_scheme("fast", latency_target=45.0)
        assert fast.scheme == "fast"
        assert fast.latency_target == 45.0
        assert base.scheme == "lite"  # original untouched
        assert fast.polling_interval == base.polling_interval
