"""Analysis helpers: statistics and table rendering."""

import numpy as np
import pytest

from repro.analysis.stats import (
    improvement_factor,
    rank_correlation,
    steady_state_mean,
    summarize_delays,
)
from repro.analysis.tables import (
    format_scatter_summary,
    format_series,
    format_table,
)


class TestStats:
    def test_steady_state_mean_takes_tail(self):
        series = np.array([100.0, 100.0, 10.0, 10.0])
        assert steady_state_mean(series, tail_fraction=0.5) == 10.0

    def test_steady_state_ignores_nan(self):
        series = np.array([1.0, np.nan, 3.0, np.nan])
        assert steady_state_mean(series, 0.5) == 3.0

    def test_steady_state_empty(self):
        assert np.isnan(steady_state_mean(np.array([])))

    def test_steady_state_validation(self):
        with pytest.raises(ValueError):
            steady_state_mean(np.array([1.0]), tail_fraction=0.0)

    def test_summarize_delays(self):
        summary = summarize_delays(np.arange(100, dtype=float))
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(49.5)
        assert summary["p90"] == pytest.approx(89.1)

    def test_summarize_empty(self):
        summary = summarize_delays(np.array([np.nan]))
        assert summary["count"] == 0

    def test_improvement_factor(self):
        assert improvement_factor(900.0, 60.0) == 15.0
        assert improvement_factor(900.0, 0.0) == float("inf")

    def test_rank_correlation_perfect(self):
        x = np.arange(50, dtype=float)
        assert rank_correlation(x, x * 3 + 1) == pytest.approx(1.0)
        assert rank_correlation(x, -x) == pytest.approx(-1.0)

    def test_rank_correlation_handles_nan(self):
        x = np.array([1.0, 2.0, np.nan, 4.0, 5.0])
        y = np.array([2.0, 4.0, 6.0, 8.0, 10.0])
        assert rank_correlation(x, y) == pytest.approx(1.0)

    def test_rank_correlation_too_few(self):
        assert np.isnan(rank_correlation(np.array([1.0]), np.array([2.0])))


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["lite", 54.0], ["legacy", 900.0]],
            title="Table 2",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "name" in lines[1]
        assert "54.00" in text
        assert "900.00" in text

    def test_nan_rendered_as_dash(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_format_series_hours(self):
        times = np.array([1800.0, 5400.0])
        text = format_series(
            times, {"corona": np.array([10.0, 5.0])}, unit="s"
        )
        assert "0.50" in text
        assert "1.50" in text
        assert "corona (s)" in text

    def test_scatter_summary_bands(self):
        ranks = np.arange(1000)
        values = np.linspace(1, 100, 1000)
        text = format_scatter_summary(
            ranks, {"pollers": values}, n_bands=4
        )
        assert "rank band" in text
        assert len(text.splitlines()) >= 5
