"""The discrete-event core: ordering, ties, cancellation."""

import pytest

from repro.simulation.engine import EventEngine


class TestOrdering:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(3.0, lambda now: fired.append(("c", now)))
        engine.schedule(1.0, lambda now: fired.append(("a", now)))
        engine.schedule(2.0, lambda now: fired.append(("b", now)))
        engine.run_until(10.0)
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_same_time_fifo(self):
        engine = EventEngine()
        fired = []
        for label in "abcde":
            engine.schedule(5.0, lambda now, l=label: fired.append(l))
        engine.run_until(5.0)
        assert fired == list("abcde")

    def test_run_until_is_inclusive(self):
        engine = EventEngine()
        fired = []
        engine.schedule(5.0, lambda now: fired.append(now))
        engine.run_until(5.0)
        assert fired == [5.0]
        assert engine.now == 5.0

    def test_clock_advances_even_without_events(self):
        engine = EventEngine()
        engine.run_until(42.0)
        assert engine.now == 42.0

    def test_past_scheduling_rejected(self):
        engine = EventEngine()
        engine.run_until(10.0)
        with pytest.raises(ValueError):
            engine.schedule(5.0, lambda now: None)
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, lambda now: None)


class TestCascades:
    def test_events_scheduling_events(self):
        engine = EventEngine()
        fired = []

        def recurring(now: float) -> None:
            fired.append(now)
            if now < 5.0:
                engine.schedule(now + 1.0, recurring)

        engine.schedule(1.0, recurring)
        engine.run_until(100.0)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_run_all_guard(self):
        engine = EventEngine()

        def forever(now: float) -> None:
            engine.schedule(now + 1.0, forever)

        engine.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            engine.run_all(max_events=100)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule(1.0, lambda now: fired.append("x"))
        handle.cancel()
        engine.run_until(10.0)
        assert fired == []

    def test_cancel_idempotent(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda now: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending() == 0

    def test_peek_skips_cancelled(self):
        engine = EventEngine()
        first = engine.schedule(1.0, lambda now: None)
        engine.schedule(2.0, lambda now: None)
        first.cancel()
        assert engine.peek_time() == 2.0

    def test_pending_counts_live_events(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda now: None)
        handle = engine.schedule(2.0, lambda now: None)
        handle.cancel()
        assert engine.pending() == 1


class TestScheduleEvery:
    def test_fires_at_start_and_each_interval_until_bound(self):
        engine = EventEngine()
        fired = []
        engine.schedule_every(50.0, 100.0, fired.append, until=300.0)
        engine.run_until(1000.0)
        # until is inclusive of the last occurrence at 250 + 100 > 300
        assert fired == [50.0, 150.0, 250.0]

    def test_unbounded_repeats_to_horizon(self):
        engine = EventEngine()
        fired = []
        engine.schedule_every(10.0, 10.0, fired.append)
        engine.run_until(45.0)
        assert fired == [10.0, 20.0, 30.0, 40.0]
        engine.run_until(65.0)
        assert fired[-1] == 60.0

    def test_cancel_stops_the_series(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule_every(10.0, 10.0, fired.append)

        def stopper(now):
            if now >= 30.0:
                handle.cancel()

        engine.schedule_every(10.0, 10.0, stopper)
        engine.run_until(100.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_start_past_until_never_fires(self):
        engine = EventEngine()
        fired = []
        engine.schedule_every(400.0, 100.0, fired.append, until=300.0)
        engine.run_until(1000.0)
        assert fired == []
        assert engine.pending() == 0

    def test_validation(self):
        engine = EventEngine()
        with pytest.raises(ValueError):
            engine.schedule_every(0.0, 0.0, lambda now: None)
