"""The instant-messaging front end (paper §3.5, §4).

Users add Corona as a buddy and drive it with plain chat messages:
``subscribe <url>`` and ``unsubscribe <url>``; update notifications
come back asynchronously as messages carrying the diff.  The paper's
prototype speaks to Yahoo IM through GAIM via a *centralized
intermediary* (Yahoo permits one login per handle) and rate-limits
outgoing messages to stay under the service's caps.

This package simulates that surface:

* :mod:`repro.im.messages` — the chat-command grammar and notification
  format;
* :mod:`repro.im.service` — a simulated IM service: buddy registry,
  presence, and offline buffering ("the IM system buffers the update
  and delivers it when the subscriber subsequently joins");
* :mod:`repro.im.gateway` — the Corona-side intermediary with
  per-client token-bucket rate limiting and burst smoothing.
"""

from repro.im.gateway import ImGateway
from repro.im.messages import (
    Notification,
    ParsedCommand,
    format_notification,
    parse_command,
)
from repro.im.service import SimIMService

__all__ = [
    "ImGateway",
    "Notification",
    "ParsedCommand",
    "SimIMService",
    "format_notification",
    "parse_command",
]
