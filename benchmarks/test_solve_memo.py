"""Steady-state optimization phase: memoized solving vs eager re-solve.

The eager reference rebuilds and re-solves every manager's Honeycomb
instance every maintenance round — O(managers) hull constructions,
move sorts and bracket searches forever, even when nothing changed.
With ``memo_solve`` (the default) the phase is delta-driven: a manager
whose remote summary and own contribution did not move skips its solve
behind one fingerprint comparison, managers whose combined instances
collide share one solution per round, and the solver's input-hash memo
absorbs revisited instances — so a converged cloud's phase
short-circuits to O(managers) hash checks, mirroring what
``delta_rounds`` did for the aggregation phase.

This bench replays the optimization phase exactly as
:meth:`MacroSimulator._run_control_round` drives it on a converged
1024-node population (the paper's evaluation scale) and gates on the
≥5x PR acceptance floor; desired levels are asserted bit-identical
between the modes first, so the speedup compares the same computation.
The 4096-node probe extends the scale sweep and is recorded, not
gated.  Results land in ``BENCH_solve_memo_{1024,4096}.json`` so the
trajectory is tracked across PRs.
"""

import time

from benchmarks.conftest import write_artifact

from repro.core.config import CoronaConfig
from repro.simulation.macro import MacroSimulator
from repro.workload.trace import generate_trace

N_NODES = 1024
PROBE_NODES = 4096
N_CHANNELS = 2000
N_SUBSCRIPTIONS = 50_000
#: The PR acceptance floor; a converged phase short-circuits to hash
#: checks, so the measured ratio sits far above this.
MIN_SPEEDUP = 5.0


def build_converged(n_nodes: int, memo: bool) -> MacroSimulator:
    trace = generate_trace(
        n_channels=N_CHANNELS, n_subscriptions=N_SUBSCRIPTIONS, seed=5
    )
    simulator = MacroSimulator(
        trace,
        CoronaConfig(scheme="lite"),
        n_nodes=n_nodes,
        seed=7,
        memo_solve=memo,
    )
    # Let aggregation horizons widen and levels walk to their targets;
    # afterwards rounds are steady state (nothing moves).
    for _ in range(10):
        simulator._run_control_round()
    return simulator


def optimization_phase(simulator: MacroSimulator) -> None:
    """The phase exactly as ``_run_control_round`` executes it."""
    solve_cache: dict | None = {} if simulator.memo_solve else None
    for node_id, node in simulator.nodes.items():
        remote = simulator.aggregator.states[node_id].best_remote()
        node.run_optimization(
            remote, simulator.n_nodes, solve_cache=solve_cache
        )


def timed_phases(simulator: MacroSimulator, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        optimization_phase(simulator)
        best = min(best, time.perf_counter() - start)
    return best


def test_steady_state_solve_speedup_1024(benchmark):
    """Memoized optimization must beat eager re-solve ≥5x once converged."""
    eager = build_converged(N_NODES, memo=False)
    memo = build_converged(N_NODES, memo=True)
    # Same computation, bit for bit: identical desired levels on every
    # manager and identical realized channel levels.
    assert (memo.levels == eager.levels).all()
    for node_id, node in memo.nodes.items():
        assert node.controller.desired == (
            eager.nodes[node_id].controller.desired
        )
    eager_seconds = timed_phases(eager)

    benchmark.pedantic(
        lambda: optimization_phase(memo), rounds=5, iterations=1
    )
    memo_seconds = benchmark.stats.stats.min
    speedup = eager_seconds / memo_seconds
    # Steady state stayed steady: the timed phases moved nothing.
    assert (memo.levels == eager.levels).all()
    lines = [
        f"Steady-state optimization phase at {N_NODES} nodes "
        f"({len(memo.nodes)} managers, {N_CHANNELS} channels)",
        f"  eager re-solve : {eager_seconds * 1000:10.2f} ms",
        f"  memoized phase : {memo_seconds * 1000:10.4f} ms",
        f"  speedup        : {speedup:10.1f} x  (floor {MIN_SPEEDUP:.0f}x)",
        f"  solver work    : {memo.solver_work.as_dict()}",
    ]
    write_artifact(
        "solve_memo_1024.txt",
        "\n".join(lines),
        data={
            "n_nodes": N_NODES,
            "n_channels": N_CHANNELS,
            "managers": len(memo.nodes),
            "eager_seconds": eager_seconds,
            "memo_seconds": memo_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "solver_work": memo.solver_work.as_dict(),
            "solver_work_eager": eager.solver_work.as_dict(),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"memoized optimization only {speedup:.1f}x faster than eager "
        f"re-solve (floor {MIN_SPEEDUP}x): {eager_seconds:.4f}s vs "
        f"{memo_seconds:.4f}s"
    )


def test_steady_state_solve_probe_4096(benchmark):
    """The scale-sweep probe: converged memoized phases at 4096 nodes.

    Recorded (BENCH_solve_memo_4096.json), not gated — the point is
    that the phase stays O(managers) hash checks as N quadruples past
    the paper's evaluation scale.
    """
    simulator = build_converged(PROBE_NODES, memo=True)
    benchmark.pedantic(
        lambda: optimization_phase(simulator), rounds=3, iterations=1
    )
    phase_seconds = benchmark.stats.stats.min
    write_artifact(
        "solve_memo_4096.txt",
        f"Steady-state memoized optimization phase at {PROBE_NODES} "
        f"nodes ({len(simulator.nodes)} managers): "
        f"{phase_seconds * 1000:.4f} ms",
        data={
            "n_nodes": PROBE_NODES,
            "n_channels": N_CHANNELS,
            "managers": len(simulator.nodes),
            "memo_seconds": phase_seconds,
            "solver_work": simulator.solver_work.as_dict(),
        },
    )
