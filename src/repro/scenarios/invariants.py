"""Runtime invariant monitors for scenario runs (opt-in).

:class:`InvariantMonitor` watches a running
:class:`~repro.core.system.CoronaSystem` for the properties the
protocol is supposed to preserve under faults and recovery:

* **population conservation** — the live population always equals
  ``n_nodes + joins - crashes`` (recoveries ride the join counter);
* **routing self-consistency** — no node's routing table or leaf set
  references a node that is no longer in the overlay (repair after a
  crash wave must scrub the dead);
* **§3.3 one-interval staleness** — once a channel's repair dirty-set
  entry has been cleared (a clean anti-entropy pass proved every
  member converged), no wedge member may lag the manager's digest;
* **manager coverage** — the manager map and the nodes' ``managed``
  channel records form a bijection over live nodes;
* **no lost subscription** — at the end of the run every subscription
  the workload issued is registered on some manager;
* **queue conservation** — every message a bandwidth-capped link
  queued is eventually delivered (drained), dropped-with-count
  (overflow) or still sitting in a bounded backlog, and the link
  table's per-state accounting matches the registry counters —
  nothing vanishes.

Every check is **read-only**: the monitor draws no randomness and
mutates no protocol state, so a monitors-on run is byte-identical to
a monitors-off run (``tests/scenarios/test_invariants.py`` proves it
against the committed CI baselines).  Violations are recorded as
labeled registry counters (``invariant_violations{invariant=...}``)
plus a structured report the runner exposes as
``ScenarioMetrics.violations`` (deliberately excluded from
``to_dict`` so baseline bytes cannot depend on it).
"""

from __future__ import annotations

from repro.core.system import CoronaSystem
from repro.obs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.scenarios.spec import ScenarioSpec


_log = get_logger(__name__)

#: Cap on recorded violations per invariant: a systemic breakage logs
#: its shape, not one entry per node per round.
_MAX_PER_INVARIANT = 32


class InvariantMonitor:
    """Read-only invariant checks over one scenario run."""

    def __init__(
        self,
        spec: ScenarioSpec,
        system: CoronaSystem,
        registry: MetricsRegistry,
    ) -> None:
        self.spec = spec
        self.system = system
        self.violations: list[dict] = []
        self._counter = registry.counter(
            "invariant_violations",
            "invariant monitor violations observed",
            labelnames=("invariant",),
        )
        self._per_invariant: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _record(self, invariant: str, at: float, detail: str) -> None:
        self._counter.labels(invariant=invariant).inc()
        seen = self._per_invariant.get(invariant, 0)
        self._per_invariant[invariant] = seen + 1
        if seen < _MAX_PER_INVARIANT:
            self.violations.append(
                {"invariant": invariant, "at": at, "detail": detail}
            )
        _log.warning(
            "invariant %s violated at t=%.0f: %s", invariant, at, detail
        )

    def report(self) -> dict:
        """JSON-safe summary: per-invariant counts + the entries."""
        counts = {
            invariant: count
            for invariant, count in sorted(self._per_invariant.items())
        }
        return {"violation_counts": counts, "violations": self.violations}

    # ------------------------------------------------------------------
    def check_round(self, now: float) -> None:
        """Run the per-round checks (after a maintenance round)."""
        self._check_population(now)
        self._check_routing(now)
        self._check_manager_coverage(now)
        self._check_staleness(now)
        self._check_queue_conservation(now)

    def check_final(
        self, now: float, registered: int, total_subscriptions: int
    ) -> None:
        """End-of-run checks on the collated subscription totals."""
        self.check_round(now)
        if registered != total_subscriptions:
            self._record(
                "no-lost-subscription",
                now,
                f"{registered} subscriptions registered at end, "
                f"workload issued {total_subscriptions}",
            )

    # ------------------------------------------------------------------
    def _check_population(self, now: float) -> None:
        system = self.system
        expected = (
            self.spec.n_nodes
            + system.counters.joins
            - system.counters.crashes
        )
        if len(system.nodes) != expected:
            self._record(
                "population-conservation",
                now,
                f"{len(system.nodes)} nodes live, expected {expected} "
                f"({self.spec.n_nodes} initial + "
                f"{system.counters.joins} joins - "
                f"{system.counters.crashes} crashes)",
            )

    def _check_routing(self, now: float) -> None:
        live = self.system.overlay.nodes
        for node_id, pastry in live.items():
            for contact in pastry.known_nodes():
                if contact not in live:
                    self._record(
                        "routing-consistency",
                        now,
                        f"node {node_id.hex()[:8]} still references "
                        f"departed node {contact.hex()[:8]}",
                    )
                    return  # one entry per round: the shape, not a census

    def _check_manager_coverage(self, now: float) -> None:
        system = self.system
        for url, manager_id in system.managers.items():
            node = system.nodes.get(manager_id)
            if node is None:
                self._record(
                    "manager-coverage",
                    now,
                    f"manager {manager_id.hex()[:8]} of {url} is not "
                    "a live node",
                )
                return
            if url not in node.managed:
                self._record(
                    "manager-coverage",
                    now,
                    f"node {manager_id.hex()[:8]} is mapped as manager "
                    f"of {url} but does not manage it",
                )
                return
        for node_id, node in system.nodes.items():
            for url in node.managed:
                if system.managers.get(url) != node_id:
                    self._record(
                        "manager-coverage",
                        now,
                        f"node {node_id.hex()[:8]} manages {url} but "
                        "the manager map disagrees",
                    )
                    return

    def _check_staleness(self, now: float) -> None:
        """§3.3 one-interval staleness on converged channels.

        Mirrors the repair pass's "behind" predicate exactly, but only
        over channels *outside* the repair dirty set: those a clean
        pass proved converged (or that never changed), where a lagging
        member means the one-interval bound silently broke.  Channels
        still in the dirty set are legitimately mid-catch-up.
        """
        system = self.system
        dirty = system._repair_dirty_urls
        converged = {
            url: manager_id
            for url, manager_id in system.managers.items()
            if url not in dirty
        }
        if not converged:
            return
        polling: dict[str, list[tuple[object, object]]] = {}
        for node_id, node in system.nodes.items():
            for url, task in node.scheduler.tasks.items():
                if url in converged:
                    polling.setdefault(url, []).append((node_id, task))
        for url, manager_id in converged.items():
            manager = system.nodes.get(manager_id)
            if manager is None:
                continue  # manager-coverage reports this one
            source = manager.scheduler.tasks.get(url)
            if source is None or not source.content.lines:
                continue
            for member_id, task in polling.get(url, ()):
                if member_id == manager_id:
                    continue
                if not task.content.lines and task.content.version == 0:
                    continue  # bootstrap, not staleness
                behind = (
                    task.content.lines != source.content.lines
                    and task.content.version <= source.content.version
                )
                if behind:
                    self._record(
                        "one-interval-staleness",
                        now,
                        f"member {member_id.hex()[:8]} lags the manager "
                        f"digest of {url} outside the repair dirty set",
                    )
                    return

    def _check_queue_conservation(self, now: float) -> None:
        """Nothing offered to a capped link may vanish.

        Two layers, both strictly read-only (queues drain in the
        table's own ``advance``, never here): per-link accounting
        (``enqueued == drained + backlog``, backlog within bounds —
        :meth:`~repro.faults.links.LinkTable.conservation_errors`)
        and the cross-check that the registry counters the scenario
        gates on agree with the per-state sums.
        """
        plane = self.system.faults
        links = getattr(plane, "links", None) if plane is not None else None
        if links is None:
            return
        for error in links.conservation_errors():
            self._record("queue-conservation", now, error)
        totals = links.queue_totals()
        counters = plane.counters
        if counters.queued_messages != totals["enqueued"]:
            self._record(
                "queue-conservation",
                now,
                f"registry queued_messages {counters.queued_messages} "
                f"!= link-state enqueued {totals['enqueued']}",
            )
        if counters.queue_drops != totals["overflowed"]:
            self._record(
                "queue-conservation",
                now,
                f"registry queue_drops {counters.queue_drops} != "
                f"link-state overflowed {totals['overflowed']}",
            )
