"""Atom rendering and parsing."""

import pytest

from repro.feeds.atom import AtomEntry, AtomFeed, parse_atom, rfc3339_date


class TestAtom:
    def test_roundtrip(self):
        feed = AtomFeed(
            title="Atom Feed",
            feed_id="urn:feed:1",
            link="http://atom.example",
            updated=rfc3339_date(0),
            entries=[
                AtomEntry(
                    title="Entry & One",
                    entry_id="urn:e:1",
                    link="http://atom.example/1",
                    summary="summary <text>",
                    updated=rfc3339_date(50),
                ),
                AtomEntry(title="Entry Two"),
            ],
        )
        parsed = parse_atom(feed.render())
        assert parsed.title == "Atom Feed"
        assert parsed.feed_id == "urn:feed:1"
        assert parsed.link == "http://atom.example"
        assert len(parsed.entries) == 2
        assert parsed.entries[0].title == "Entry & One"
        assert parsed.entries[0].summary == "summary <text>"
        assert parsed.entries[0].link == "http://atom.example/1"

    def test_rfc3339_format(self):
        assert rfc3339_date(0) == "1970-01-01T00:00:00Z"

    def test_no_feed_raises(self):
        with pytest.raises(ValueError):
            parse_atom("<rss><channel/></rss>")

    def test_unknown_elements_skipped(self):
        parsed = parse_atom(
            "<feed><title>T</title><weird>x</weird>"
            "<entry><title>e</title></entry></feed>"
        )
        assert parsed.title == "T"
        assert parsed.entries[0].title == "e"
