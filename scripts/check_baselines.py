#!/usr/bin/env python
"""Diff fixed-seed scenario metrics against the committed CI baselines.

Scenario runs are bit-for-bit deterministic (same spec + same seed ⇒
identical ``--json`` metrics), so CI gates on *exact* equality: any
metric drift — intended or not — shows up as a failing diff naming
the scenario, variant and keys that moved.  Timings are deliberately
not part of these files; they are reported separately from the
``BENCH_timings_*.json`` artifacts and never gated.

Usage::

    python scripts/check_baselines.py            # compare (CI gate)
    python scripts/check_baselines.py --jobs 4   # same gate, farmed
    python scripts/check_baselines.py --update   # regenerate baselines

``--jobs N`` (N > 1) fans the scenario runs across the sweep farm's
worker processes (:mod:`repro.sweeps`) — byte-identical metrics,
lower wall clock; ``--jobs 1`` (the default) keeps the original
serial in-process path as the fallback.

To add a scenario to the CI baseline set: append its registered name
to ``BASELINE_SCENARIOS`` below, run ``--update``, commit the new
``ci/baselines/<name>.json``, and mention the change in the PR — the
diff *is* the review artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios.registry import get_scenario  # noqa: E402
from repro.scenarios.runner import ScenarioRunner  # noqa: E402
from repro.sweeps import SweepTask, run_tasks  # noqa: E402

#: The fixed-seed scenarios CI gates on.  Kept small and fast; the
#: churn-scale-sweep is exercised by the benchmark suite instead so
#: its timings land in BENCH_timings_*.json without gating CI runtime.
#: The fault scenarios gate the fault plane end to end: their
#: baselines pin messages_dropped / retransmissions / repair_diffs /
#: manager_failovers exactly (fault decisions draw from the plane's
#: own seeded generator, so they are as deterministic as everything
#: else).  The two link scenarios extend the gate to the per-link
#: table: queued_messages / queue_drops / retries_suppressed /
#: polls_shed pin the token-bucket, backoff and shedding paths the
#: same way (the table draws from its own seeded generator too).
BASELINE_SCENARIOS = (
    "steady-state",
    "heavy-churn",
    "lossy-overlay",
    "partition-heal",
    "congested-relay",
    "asymmetric-loss",
)
BASELINE_SEED = 0

# The built-in `baseline-suite` sweep mirrors this set so `repro sweep
# run baseline-suite` farms exactly what the gate gates; drift between
# the two would silently un-gate a scenario.
from repro.sweeps.builtin import BASELINE_SUITE_SCENARIOS  # noqa: E402

assert BASELINE_SUITE_SCENARIOS == BASELINE_SCENARIOS, (
    "repro.sweeps.builtin.BASELINE_SUITE_SCENARIOS is out of sync with "
    "scripts/check_baselines.py BASELINE_SCENARIOS"
)
BASELINE_DIR = REPO_ROOT / "ci" / "baselines"

#: Scale-sweep *work* baselines: scenario → gated variants.  Only the
#: deterministic work counters (``work_*`` aggregation value-changes
#: and ``solver_work_*`` optimization-phase counters) are recorded —
#: gating the full metrics of a 512-node run would mostly re-gate what
#: the small scenarios already cover, while the work counters are
#: exactly the scale signal timings are too noisy to gate on.  Stored
#: as ``ci/baselines/<name>.work.json`` to mark the subset.
WORK_BASELINE_SCENARIOS: dict[str, tuple[str, ...]] = {
    "churn-scale-sweep": ("n512",),
}
WORK_KEY_PREFIXES = ("work_", "solver_work_")

#: Execution-classification counters excluded from the exact gate.
#: Which equivalent cache layer absorbs a skipped solve (the
#: whole-phase memo vs the round-scoped shared cache) has been
#: observed to flip by one across otherwise identical processes in
#: rare runs; their conserved sum is gated instead, as
#: ``solver_work_solve_hits``, alongside ``solver_work_problems_
#: solved``.  The split stays in the ``--json`` output for humans.
UNGATED_KEYS = frozenset(
    {"solver_work_memo_hits", "solver_work_shared_hits"}
)


def _gated(metrics: dict) -> dict:
    return {
        key: value
        for key, value in metrics.items()
        if key not in UNGATED_KEYS
    }


def run_scenario(name: str) -> dict:
    runner = ScenarioRunner(get_scenario(name), seed=BASELINE_SEED)
    return {
        label: _gated(metrics.to_dict())
        for label, metrics in runner.run_all().items()
    }


def run_work_scenario(name: str, variants: tuple[str, ...]) -> dict:
    """The work-counter subset of ``name``'s metrics, per variant."""
    runner = ScenarioRunner(get_scenario(name), seed=BASELINE_SEED)
    payload = {}
    for label in variants:
        metrics = _gated(runner.run(label).to_dict())
        payload[label] = {
            key: value
            for key, value in metrics.items()
            if key.startswith(WORK_KEY_PREFIXES)
        }
    return payload


def _scenario_variants(name: str) -> list[str | None]:
    """The variant labels one gated scenario expands to, in order."""
    if name in WORK_BASELINE_SCENARIOS:
        return list(WORK_BASELINE_SCENARIOS[name])
    labels = get_scenario(name).variant_labels()
    return list(labels) if labels else [None]


def run_all_via_farm(names: list[str], jobs: int) -> dict[str, dict]:
    """Farm every gated run; scenario → {label: gated payload}.

    One grid for the whole baseline set (variants enumerated exactly
    as the serial path would), fanned across ``jobs`` workers.  The
    farm's byte-identity contract (tests/sweeps/) is what licenses
    gating through it: per-variant JSON is identical to the serial
    path's.  A failed task raises — a gate must never silently pass
    on a partial grid.
    """
    tasks = [
        SweepTask(name, variant, BASELINE_SEED)
        for name in names
        for variant in _scenario_variants(name)
    ]
    results = run_tasks(
        tasks, jobs=jobs, retries=1, sweep_name="baseline-gate"
    )
    failures = [result for result in results if not result.ok]
    if failures:
        details = "; ".join(
            f"{result.task.key}: {result.error}" for result in failures
        )
        raise RuntimeError(f"baseline farm run failed: {details}")
    payloads: dict[str, dict] = {}
    for result in results:
        payloads.setdefault(result.task.scenario, {})[
            result.task.label
        ] = _gated(result.payload)
    return payloads


def baseline_path(name: str) -> Path:
    return BASELINE_DIR / f"{name}.json"


def work_baseline_path(name: str) -> Path:
    return BASELINE_DIR / f"{name}.work.json"


def diff_metrics(expected: dict, actual: dict, context: str) -> list[str]:
    """Human-readable per-key drift report (empty = identical)."""
    drift: list[str] = []
    for label in sorted(set(expected) | set(actual)):
        if label not in expected:
            drift.append(f"{context}[{label}]: variant not in baseline")
            continue
        if label not in actual:
            drift.append(f"{context}[{label}]: variant missing from run")
            continue
        left, right = expected[label], actual[label]
        for key in sorted(set(left) | set(right)):
            if left.get(key) != right.get(key):
                drift.append(
                    f"{context}[{label}].{key}: "
                    f"baseline {left.get(key)!r} != run {right.get(key)!r}"
                )
    return drift


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        default=[],
        help="scenario names (default: the CI baseline set plus the "
        "work-counter baselines)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="regenerate the committed baselines instead of comparing",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the scenario runs (1 = the serial "
        "in-process fallback; >1 delegates to the repro.sweeps farm — "
        "metrics are byte-identical either way)",
    )
    args = parser.parse_args(argv)
    names = args.names or (
        list(BASELINE_SCENARIOS) + list(WORK_BASELINE_SCENARIOS)
    )

    farmed: dict[str, dict] | None = None
    if args.jobs > 1:
        farmed = run_all_via_farm(names, jobs=args.jobs)

    def work_subset(payload: dict) -> dict:
        return {
            label: {
                key: value
                for key, value in metrics.items()
                if key.startswith(WORK_KEY_PREFIXES)
            }
            for label, metrics in payload.items()
        }

    failures: list[str] = []
    targets = []
    for name in names:
        if name in WORK_BASELINE_SCENARIOS:
            # A work-baseline scenario is always handled as its work
            # subset — `--update churn-scale-sweep` refreshes the
            # .work.json gate rather than replaying every scale
            # variant in full (nothing gates those full metrics).
            variants = WORK_BASELINE_SCENARIOS[name]
            if farmed is not None:
                produce = lambda n=name: work_subset(farmed[n])  # noqa: E731
            else:
                produce = lambda n=name, v=variants: (  # noqa: E731
                    run_work_scenario(n, v)
                )
            targets.append(
                (f"{name}[work]", work_baseline_path(name), produce)
            )
        else:
            if farmed is not None:
                produce = lambda n=name: farmed[n]  # noqa: E731
            else:
                produce = lambda n=name: run_scenario(n)  # noqa: E731
            targets.append((name, baseline_path(name), produce))
    for label, path, produce in targets:
        actual = produce()
        if args.update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(actual, indent=2, sort_keys=True) + "\n"
            )
            print(f"updated {path.relative_to(REPO_ROOT)}")
            continue
        if not path.exists():
            failures.append(
                f"{label}: no baseline at {path.relative_to(REPO_ROOT)} "
                "(run scripts/check_baselines.py --update and commit it)"
            )
            continue
        expected = json.loads(path.read_text())
        drift = diff_metrics(expected, actual, context=label)
        if drift:
            failures.extend(drift)
            print(f"FAIL {label}: {len(drift)} metric(s) drifted")
        else:
            print(f"ok   {label} (seed {BASELINE_SEED})")
    if failures:
        print("\nMetric drift against committed baselines:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print(
            "\nIf the drift is intended, regenerate with "
            "`python scripts/check_baselines.py --update` and commit.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
