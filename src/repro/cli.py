"""Command-line interface for running Corona experiments.

Usage::

    python -m repro table2   [--channels N] [--subscriptions N] [--nodes N]
    python -m repro simulate --scheme lite [--channels N] [--hours H] ...
    python -m repro deploy   [--nodes N] [--channels N] [--hours H]
    python -m repro scenario list
    python -m repro scenario run <name> [--seed N] [--variant V] [--json]
                                        [--trace spans.jsonl]
    python -m repro sweep list
    python -m repro sweep run <name> [-j N] [--json] [--out DIR]
                                     [--timeout S] [--retries K]
                                     [--trace spans.jsonl]
    python -m repro report <name> [--seed N] [--variant V]
                                  [--format terminal|md|json]
                                  [--out report.md] [--timings] [-j N]
    python -m repro trace export spans.jsonl -o trace.json [--clock sim]
    python -m repro bench compare BENCH_a.json BENCH_b.json ... [--no-gate]

``table2`` reproduces the paper's summary table across all schemes;
``simulate`` runs one scheme through the macro simulator and prints
the Figure 3/4 series; ``deploy`` runs the full-protocol deployment
experiment (Figures 9–10); ``scenario`` drives the declarative
orchestration subsystem (:mod:`repro.scenarios`) — fault-injection
timelines over the full protocol stack; ``sweep`` fans a registered
grid of scenario runs across worker processes
(:mod:`repro.sweeps` — serial and parallel runs emit byte-identical
per-variant JSON).  ``report`` runs a scenario (or a sweep grid) with
the run-introspection plane attached — per-round timeline sampling +
update-freshness provenance — and renders one report document
(terminal, markdown or JSON; deterministic unless ``--timings`` adds
wall clocks).  ``trace export`` converts a
``--trace`` span log to Chrome-trace JSON (load it in Perfetto or
``chrome://tracing``); ``bench compare`` gates timing drift across
``BENCH_*.json`` artifacts against a rolling baseline (``--no-gate``
for report-only).  Global
``-v``/``-vv`` raise log verbosity, ``-q`` silences warnings.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path

import numpy as np

from repro.analysis.stats import rank_correlation, steady_state_mean
from repro.analysis.tables import format_series, format_table
from repro.core.config import SCHEME_NAMES, CoronaConfig
from repro.obs import Observability, export_chrome_trace, setup_logging
from repro.obs.drift import NOISE_FLOOR, compare_paths, gate_verdict
from repro.obs.trace import read_spans
from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpecError,
    get_scenario,
    list_scenarios,
)
from repro.scenarios.registry import UnknownScenarioError
from repro.simulation.deployment import DeploymentSimulator
from repro.simulation.macro import MacroSimulator, run_legacy
from repro.sweeps import (
    JOURNAL_NAME,
    JournalError,
    SweepJournal,
    UnknownSweepError,
    get_sweep,
    list_sweeps,
    run_sweep,
    write_variant_file,
)
from repro.workload.trace import generate_trace


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--channels", type=int, default=2000)
    parser.add_argument("--subscriptions", type=int, default=100_000)
    parser.add_argument("--nodes", type=int, default=128)
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tau", type=float, default=1800.0,
                        help="polling interval in seconds")


def cmd_table2(args: argparse.Namespace) -> int:
    trace = generate_trace(
        n_channels=args.channels,
        n_subscriptions=args.subscriptions,
        seed=args.seed,
    )
    rows = [["Legacy-RSS", 900.0 * args.tau / 1800.0, float(trace.subscribers.mean()), "-"]]
    for scheme in SCHEME_NAMES:
        config = CoronaConfig(scheme=scheme, polling_interval=args.tau)
        result = MacroSimulator(
            trace, config, n_nodes=args.nodes, seed=args.seed,
            horizon=args.hours * 3600.0,
        ).run()
        latency = args.tau / 2.0 / np.maximum(1, result.final_pollers)
        rows.append(
            [
                f"Corona-{scheme.title()}",
                result.analytic_weighted_delay,
                steady_state_mean(result.polls_per_min, 0.34)
                * (args.tau / 60.0)
                / args.channels,
                f"{rank_correlation(trace.update_intervals, latency):+.2f}",
            ]
        )
    print(
        format_table(
            ["Scheme", "Avg detection (s)", f"Polls/{args.tau / 60:.0f}min/channel",
             "latency~interval corr"],
            rows,
            title="Table 2 — performance summary",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    trace = generate_trace(
        n_channels=args.channels,
        n_subscriptions=args.subscriptions,
        seed=args.seed,
    )
    config = CoronaConfig(
        scheme=args.scheme,
        polling_interval=args.tau,
        latency_target=args.target,
    )
    result = MacroSimulator(
        trace, config, n_nodes=args.nodes, seed=args.seed,
        horizon=args.hours * 3600.0,
    ).run()
    legacy = run_legacy(
        trace, config, horizon=args.hours * 3600.0, seed=args.seed
    )
    print(
        format_series(
            result.bucket_times,
            {
                "legacy load": legacy.polls_per_min,
                "corona load": result.polls_per_min,
                "legacy delay": legacy.analytic_series,
                "corona delay": result.analytic_series,
            },
        )
    )
    print(
        f"\nscheme={args.scheme}  weighted delay: "
        f"{result.analytic_weighted_delay:.1f}s  "
        f"polls/ch/tau: {result.polls_per_channel_per_tau:.2f}  "
        f"orphans: {result.orphan_count}"
    )
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    trace = generate_trace(
        n_channels=args.channels,
        n_subscriptions=args.subscriptions,
        seed=args.seed,
        subscription_window=3600.0,
    )
    config = CoronaConfig(
        polling_interval=args.tau,
        maintenance_interval=args.tau,
        base=args.base,
    )
    simulator = DeploymentSimulator(
        trace, config, n_nodes=args.nodes, seed=args.seed,
        horizon=args.hours * 3600.0,
    )
    result = simulator.run()
    print(
        format_series(
            result.bucket_times,
            {"corona polls/min": result.corona_polls_per_min},
        )
    )
    steady = steady_state_mean(result.detection_times, 0.5)
    print(
        f"\ndetections: {result.detections}   steady detection: "
        f"{steady:.1f}s (legacy {result.legacy_detection_time:.0f}s)   "
        f"corona load: {steady_state_mean(result.corona_polls_per_min, 0.4):.0f}"
        f"/min (legacy {result.legacy_polls_per_min:.0f}/min)"
    )
    return 0


def cmd_scenario_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in list_scenarios():
        variants = ", ".join(spec.variant_labels()) or "-"
        rows.append(
            [spec.name, spec.n_nodes, spec.workload.n_channels,
             len(spec.events), variants, spec.description]
        )
    print(
        format_table(
            ["scenario", "nodes", "channels", "events", "variants",
             "description"],
            rows,
            title="Built-in scenarios (repro scenario run <name>)",
        )
    )
    return 0


def cmd_scenario_run(args: argparse.Namespace) -> int:
    sink = None
    try:
        spec = get_scenario(args.name)
        obs = None
        if args.trace is not None:
            sink = open(args.trace, "w", encoding="utf-8")
            obs = Observability.on(sink=sink)
        runner = ScenarioRunner(
            spec,
            seed=args.seed,
            obs=obs,
            check_invariants=args.check_invariants,
        )
        if args.variant is not None:
            results = {args.variant: runner.run(args.variant)}
        else:
            results = runner.run_all()
    except (UnknownScenarioError, ScenarioSpecError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if sink is not None:
            sink.close()
    if args.check_invariants:
        # Report on stderr so --json stdout stays byte-identical to a
        # monitors-off run; the exit code is unchanged (report-only).
        total = sum(len(m.violations) for m in results.values())
        print(
            f"invariants: {total} violation(s) across "
            f"{len(results)} variant run(s)",
            file=sys.stderr,
        )
        for label, metrics in results.items():
            for entry in metrics.violations:
                print(
                    f"  [{label}] {entry['invariant']} at "
                    f"t={entry['at']:.0f}: {entry['detail']}",
                    file=sys.stderr,
                )
    if args.json:
        payload = {
            label: metrics.to_dict() for label, metrics in results.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for index, metrics in enumerate(results.values()):
        if index:
            print()
        print(metrics.summary())
    if len(results) > 1:
        # One table across variants — e.g. scheme-fault-sweep's
        # per-scheme comparison under the identical fault timeline.
        print()
        print(_variant_table(results))
    return 0


def _variant_table(results: dict) -> str:
    """Side-by-side key metrics for a multi-variant run."""
    rows = []
    for label, m in results.items():
        delay = (
            f"{m.mean_detection_delay:.1f}"
            if not math.isnan(m.mean_detection_delay)
            else "n/a"
        )
        rows.append(
            [
                label,
                m.detections,
                delay,
                f"{m.mean_polls_per_min:.1f}",
                m.messages_dropped,
                m.retransmissions,
                m.repair_diffs,
                m.manager_failovers,
            ]
        )
    first = next(iter(results.values()))
    return format_table(
        ["variant", "detections", "delay (s)", "polls/min", "dropped",
         "retransmits", "repairs", "failovers"],
        rows,
        title=f"{first.scenario} — variant comparison",
    )


def cmd_sweep_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in list_sweeps():
        rows.append(
            [
                spec.name,
                len(spec.tasks()),
                ", ".join(spec.scenario_names()),
                ", ".join(str(seed) for seed in spec.seeds),
                spec.description,
            ]
        )
    print(
        format_table(
            ["sweep", "tasks", "scenarios", "seeds", "description"],
            rows,
            title="Built-in sweeps (repro sweep run <name> -j N)",
        )
    )
    return 0


def cmd_sweep_run(args: argparse.Namespace) -> int:
    sink = None
    journal = None
    try:
        spec = get_sweep(args.name)
    except UnknownSweepError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    resume = getattr(args, "resume", False)
    if resume and args.out is None:
        print(
            "error: --resume needs --out DIR (the journal lives there)",
            file=sys.stderr,
        )
        return 2
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    completed = None
    on_result = None
    try:
        if args.out is not None:
            # Journal every terminal result as it lands (and write its
            # per-variant file incrementally), so a killed sweep can be
            # resumed with --resume without redoing finished tasks.
            root = Path(args.out)
            root.mkdir(parents=True, exist_ok=True)
            journal_path = root / JOURNAL_NAME
            if resume and journal_path.exists():
                journal, state = SweepJournal.resume(
                    journal_path, spec.name, args.check_invariants
                )
                completed = state.results
                if completed:
                    print(
                        f"resuming {spec.name}: {len(completed)} "
                        "journaled task(s) skipped",
                        file=sys.stderr,
                    )
            else:
                journal = SweepJournal.create(
                    journal_path, spec.name, args.check_invariants
                )

            def on_result(result):
                journal.append(result)
                write_variant_file(root, result)

        obs = None
        if args.trace is not None:
            sink = open(args.trace, "w", encoding="utf-8")
            obs = Observability.on(sink=sink)
        run = run_sweep(
            spec,
            jobs=jobs,
            timeout=args.timeout,
            retries=args.retries,
            obs=obs,
            check_invariants=args.check_invariants,
            completed=completed,
            on_result=on_result,
        )
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except RuntimeError as error:
        # The farm's poisoned-environment bail-out (respawn cap).
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if journal is not None:
            journal.close()
        if sink is not None:
            sink.close()
    if args.out is not None:
        written = run.write_artifacts(args.out)
        if args.check_invariants:
            report_path = Path(args.out) / "violations.json"
            report_path.write_text(
                json.dumps(run.violation_report(), indent=2,
                           sort_keys=True) + "\n"
            )
            written.append(report_path)
        if not args.json:
            print(f"wrote {len(written)} artifact(s) under {args.out}")
    if args.check_invariants:
        report = run.violation_report()
        print(
            f"invariants: {report['total_violations']} violation(s) "
            f"across {report['monitored_tasks']} monitored task(s)",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(run.merged(), indent=2, sort_keys=True))
    else:
        print(run.comparison_table())
        for result in run.failed:
            print(
                f"FAILED {result.task.key} after {result.attempts} "
                f"attempt(s): {result.error}",
                file=sys.stderr,
            )
    return 1 if run.failed else 0


def _infer_report_format(args: argparse.Namespace) -> str:
    if args.format is not None:
        return args.format
    if args.out is not None:
        if args.out.endswith(".json"):
            return "json"
        if args.out.endswith(".md"):
            return "md"
    return "terminal"


def _emit_report(rendered: str, out: str | None) -> None:
    if out is None:
        print(rendered, end="")
        return
    target = Path(out)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rendered, encoding="utf-8")
    print(f"wrote report to {out}")


def cmd_report(args: argparse.Namespace) -> int:
    """Run a scenario or sweep under introspection; render a report.

    The report document is fully deterministic (same name + seed ⇒
    byte-identical output) unless ``--timings`` adds the span-derived
    wall-clock section.
    """
    from repro.obs.report import (
        build_scenario_report,
        render_report_markdown,
        render_report_terminal,
        render_sweep_report_markdown,
        render_sweep_report_terminal,
    )

    spec = None
    sweep_spec = None
    try:
        spec = get_scenario(args.name)
    except UnknownScenarioError:
        try:
            sweep_spec = get_sweep(args.name)
        except UnknownSweepError:
            print(
                f"error: {args.name!r} is neither a registered scenario "
                "nor a registered sweep",
                file=sys.stderr,
            )
            return 2
    fmt = _infer_report_format(args)

    if sweep_spec is not None:
        jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
        try:
            run = run_sweep(
                sweep_spec,
                jobs=jobs,
                collect_report=True,
                check_invariants=args.check_invariants,
            )
        except RuntimeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        document = run.run_report()
        if fmt == "json":
            rendered = (
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
        elif fmt == "md":
            rendered = render_sweep_report_markdown(document)
        else:
            rendered = render_sweep_report_terminal(document)
        _emit_report(rendered, args.out)
        return 1 if run.failed else 0

    try:
        labels = (
            [args.variant]
            if args.variant is not None
            else (spec.variant_labels() or [None])
        )
        reports: dict[str, dict] = {}
        for label in labels:
            # A fresh introspection plane per variant: timelines and
            # freshness percentiles never mix across variants.
            obs = Observability.introspected(
                seed=args.seed, trace=args.timings
            )
            runner = ScenarioRunner(
                spec,
                seed=args.seed,
                obs=obs,
                check_invariants=args.check_invariants,
            )
            metrics = runner.run(label)
            reports[metrics.variant] = build_scenario_report(
                metrics.to_dict(),
                timeline=obs.timeline,
                provenance=obs.provenance,
                violations=metrics.violations,
                registry=obs.registry if args.timings else None,
            )
    except (UnknownScenarioError, ScenarioSpecError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if fmt == "json":
        payload = (
            next(iter(reports.values())) if len(reports) == 1 else reports
        )
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    elif fmt == "md":
        rendered = "\n".join(
            render_report_markdown(report) for report in reports.values()
        )
    else:
        rendered = "\n".join(
            render_report_terminal(report) for report in reports.values()
        )
    _emit_report(rendered, args.out)
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    """Convert a ``--trace`` JSONL span log to Chrome-trace JSON."""
    try:
        with open(args.input, encoding="utf-8") as handle:
            records = read_spans(handle)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    document = export_chrome_trace(
        records,
        clock=args.clock,
        process_name=f"repro ({args.clock} clock)",
    )
    rendered = json.dumps(document, indent=None, separators=(",", ":"))
    if args.output is None:
        print(rendered)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(
            f"wrote {len(document['traceEvents'])} events to "
            f"{args.output} ({args.clock} clock)"
        )
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Drift report over timing artifacts (oldest → newest)."""
    try:
        report, regressed = compare_paths(
            args.snapshots, threshold=args.threshold, window=args.window
        )
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report)
    if regressed:
        print(
            f"\n{len(regressed)} benchmark(s) above the "
            f"+{args.threshold:.0%} drift threshold"
        )
    print(gate_verdict(regressed, threshold=args.threshold))
    if regressed and args.gate:
        print(
            "\ndrift gate failed. If the drift is intended (a known "
            "slowdown or a stale rolling baseline), refresh the "
            "committed snapshot: re-run the benchmarks and copy the "
            "fresh benchmarks/results/BENCH_timings_ci.json over the "
            "committed copy (see README, 'Perf drift gate'). "
            "Use --no-gate for a report-only run.",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Corona (NSDI 2006) reproduction experiments",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="log errors only",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    table2 = commands.add_parser("table2", help="all schemes, Table 2 style")
    _add_workload_args(table2)
    table2.set_defaults(func=cmd_table2)

    simulate = commands.add_parser("simulate", help="one scheme, Fig 3/4 series")
    _add_workload_args(simulate)
    simulate.add_argument("--scheme", choices=SCHEME_NAMES, default="lite")
    simulate.add_argument("--target", type=float, default=30.0,
                          help="Corona-Fast latency target (s)")
    simulate.set_defaults(func=cmd_simulate)

    deploy = commands.add_parser("deploy", help="full-protocol deployment")
    _add_workload_args(deploy)
    deploy.set_defaults(
        func=cmd_deploy, channels=150, subscriptions=1500, nodes=24,
        hours=2.0,
    )
    deploy.add_argument("--base", type=int, default=4)
    deploy.set_defaults(func=cmd_deploy)

    scenario = commands.add_parser(
        "scenario", help="declarative scenario & fault-injection runner"
    )
    scenario_commands = scenario.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_list = scenario_commands.add_parser(
        "list", help="show the registered scenarios"
    )
    scenario_list.set_defaults(func=cmd_scenario_list)
    scenario_run = scenario_commands.add_parser(
        "run", help="run one scenario (all its variants by default)"
    )
    scenario_run.add_argument("name", help="registered scenario name")
    scenario_run.add_argument("--seed", type=int, default=0)
    scenario_run.add_argument(
        "--variant", default=None, help="run only this variant"
    )
    scenario_run.add_argument(
        "--json", action="store_true",
        help="emit machine-readable metrics instead of the summary",
    )
    scenario_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write phase/event spans to PATH as JSON-lines "
             "(convert with 'repro trace export')",
    )
    scenario_run.add_argument(
        "--check-invariants", action="store_true",
        help="attach read-only invariant monitors (population, "
             "routing, staleness…); violations go to stderr, metrics "
             "stay byte-identical",
    )
    scenario_run.set_defaults(func=cmd_scenario_run)

    sweep = commands.add_parser(
        "sweep",
        help="parallel sweep farm (grids of scenario runs)",
    )
    sweep_commands = sweep.add_subparsers(
        dest="sweep_command", required=True
    )
    sweep_list = sweep_commands.add_parser(
        "list", help="show the registered sweeps"
    )
    sweep_list.set_defaults(func=cmd_sweep_list)
    def _add_sweep_run_args(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("name", help="registered sweep name")
        subparser.add_argument(
            "-j", "--jobs", type=int, default=0,
            help="worker processes (default 0 = one per CPU; 1 = "
                 "serial in-process — byte-identical output either "
                 "way)",
        )
        subparser.add_argument(
            "--timeout", type=float, default=None, metavar="S",
            help="per-task wall-clock budget in seconds (parallel "
                 "mode; an over-budget worker is killed and the task "
                 "retried)",
        )
        subparser.add_argument(
            "--retries", type=int, default=1, metavar="K",
            help="extra attempts per failed/timed-out task (default 1)",
        )
        subparser.add_argument(
            "--json", action="store_true",
            help="emit the merged comparison artifact instead of the "
                 "table",
        )
        subparser.add_argument(
            "--out", default=None, metavar="DIR",
            help="write sweep.json, summary.txt, per-variant JSON and "
                 "the resume journal under DIR",
        )
        subparser.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write farm-level sweep.run/sweep.task spans to PATH "
                 "as JSON-lines (convert with 'repro trace export')",
        )
        subparser.add_argument(
            "--check-invariants", action="store_true",
            help="run every task with read-only invariant monitors; "
                 "writes violations.json under --out DIR",
        )

    sweep_run = sweep_commands.add_parser(
        "run",
        help="run one sweep's grid across worker processes",
    )
    _add_sweep_run_args(sweep_run)
    sweep_run.add_argument(
        "--resume", action="store_true",
        help="skip tasks already journaled under --out DIR "
             "(crash-resumable: artifacts end up byte-identical to an "
             "uninterrupted run)",
    )
    sweep_run.set_defaults(func=cmd_sweep_run)
    sweep_resume = sweep_commands.add_parser(
        "resume",
        help="continue an interrupted 'sweep run --out DIR' from its "
             "journal (same as run --resume)",
    )
    _add_sweep_run_args(sweep_resume)
    sweep_resume.set_defaults(func=cmd_sweep_run, resume=True)

    report = commands.add_parser(
        "report",
        help="run a scenario or sweep with the introspection plane "
             "and render a run report",
    )
    report.add_argument(
        "name", help="registered scenario or sweep name"
    )
    report.add_argument(
        "--seed", type=int, default=0,
        help="scenario reports: run seed (sweeps use their own grid)",
    )
    report.add_argument(
        "--variant", default=None,
        help="scenario reports: only this variant",
    )
    report.add_argument(
        "--format", choices=("terminal", "md", "json"), default=None,
        help="output format (default: inferred from the --out suffix, "
             "else terminal)",
    )
    report.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH (.json/.md also infer --format)",
    )
    report.add_argument(
        "-j", "--jobs", type=int, default=0,
        help="worker processes for sweep reports "
             "(default 0 = one per CPU)",
    )
    report.add_argument(
        "--timings", action="store_true",
        help="trace phases and include span-derived wall-clock "
             "timings (nondeterministic; default reports are "
             "byte-stable across invocations)",
    )
    report.add_argument(
        "--check-invariants", action="store_true",
        help="attach read-only invariant monitors; violations appear "
             "in the report",
    )
    report.set_defaults(func=cmd_report)

    trace = commands.add_parser(
        "trace", help="span-trace tooling (export to Chrome trace)"
    )
    trace_commands = trace.add_subparsers(
        dest="trace_command", required=True
    )
    trace_export = trace_commands.add_parser(
        "export",
        help="convert a --trace JSONL log to Chrome-trace JSON "
             "(Perfetto / chrome://tracing)",
    )
    trace_export.add_argument("input", help="span JSONL from --trace")
    trace_export.add_argument(
        "-o", "--output", default=None,
        help="output path (default: stdout)",
    )
    trace_export.add_argument(
        "--clock", choices=("wall", "sim"), default="wall",
        help="timeline to lay spans out on (default: wall)",
    )
    trace_export.set_defaults(func=cmd_trace_export)

    bench = commands.add_parser(
        "bench", help="benchmark artifact tooling"
    )
    bench_commands = bench.add_subparsers(
        dest="bench_command", required=True
    )
    bench_compare = bench_commands.add_parser(
        "compare",
        help="drift of the newest BENCH_*.json vs a rolling baseline",
    )
    bench_compare.add_argument(
        "snapshots", nargs="+",
        help="timing artifacts, oldest first; the last is the candidate",
    )
    bench_compare.add_argument(
        "--threshold", type=float, default=NOISE_FLOOR,
        help="relative drift that flags a regression (default: the "
             f"documented noise floor, {NOISE_FLOOR})",
    )
    bench_compare.add_argument(
        "--window", type=int, default=8,
        help="baseline snapshots feeding the rolling median (default 8)",
    )
    gate_flags = bench_compare.add_mutually_exclusive_group()
    gate_flags.add_argument(
        "--gate", dest="gate", action="store_true", default=True,
        help="exit non-zero on regressions (the default since the "
             f"+{NOISE_FLOOR:.0%} noise floor was characterized)",
    )
    gate_flags.add_argument(
        "--no-gate", dest="gate", action="store_false",
        help="report only, always exit zero on regressions",
    )
    bench_compare.set_defaults(func=cmd_bench_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(-1 if args.quiet else args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
